package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"sort"
)

// FlightKind classifies a flight-recorder record.
type FlightKind uint8

const (
	// FlightExec is one pipeline execution (packet arrival at a switch).
	FlightExec FlightKind = iota
	// FlightRule is one matched flow entry of the preceding execution.
	FlightRule
	// FlightGroup is one group-bucket decision of the preceding execution.
	FlightGroup
	// FlightSend is one failed link transmission (down link, loss,
	// blackhole). Delivered hops are not recorded: each one is already
	// visible as the receiving switch's FlightExec record, so spending
	// ring entries on them would only halve the retained history.
	FlightSend
	// FlightPacketIn is a delivery to the controller attachment.
	FlightPacketIn
	// FlightSelf is a delivery to a switch-local host.
	FlightSelf
	// FlightNote is a free-form marker (phase boundary, gate rejection).
	FlightNote
)

var kindNames = [...]string{"exec", "rule", "group", "send", "packet-in", "self", "note"}

func (k FlightKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// FlightTag is one decoded packet tag field (e.g. the DFS start/par/cur
// state) as it appears in a JSONL dump.
type FlightTag struct {
	Name string `json:"name"`
	Val  uint64 `json:"val"`
}

// cookieInline is the cookie capacity of a record; cookieOverflow in
// CookieLen marks a cookie interned in the recorder's overflow table.
const (
	cookieInline   = 22
	cookieOverflow = 0xFF
)

// FlightRecord is one fixed-size ring entry, laid out to fill exactly one
// cache line (64 bytes) with no pointers: the record path is memory
// traffic, so the ring's footprint is the recorder's cost, and a
// pointer-free ring is never scanned by the garbage collector and its
// stores carry no write barriers. Which fields are meaningful depends on
// Kind; unused fields stay zero.
//
// The rule cookie (or note text) is stored inline when it fits 22 bytes
// — every cookie the compiler emits does — and interned in the
// recorder's overflow table otherwise; use Flight.SetCookie and
// Flight.CookieString rather than touching Cookie directly. Tag names
// live in the recorder's interned table, referenced by NameIdx.
// Switch/port ids are int16 (the simulator tops out far below 32k
// switches) and decoded tag values are truncated to 32 bits, which holds
// every field the compiler allocates (node indices and parity bits, not
// 64-bit quantities).
type FlightRecord struct {
	At   int64     // simulation time, ns
	Tags [3]uint32 // decoded tag values

	Group uint32

	Sw     int16 // executing switch / sender (-1 for notes)
	Port   int16 // ingress port / egress port for sends
	To     int16 // send destination switch
	ToPort int16

	Eth    uint16
	Bucket int16

	Kind    FlightKind
	Matched bool
	// Lane is the event-loop lane (shard) that recorded this entry: the
	// owning worker lane of a sharded run (the control lane records notes
	// and appears as the highest lane id), 0 on the classic single loop.
	// It is what lets a merged sharded dump be correlated with the
	// per-lane causal traces.
	Lane    uint8
	NumTags uint8
	NameIdx uint8 // index into the recorder's tag-name table

	CookieLen uint8 // 0..22 inline length; cookieOverflow = interned
	Cookie    [cookieInline]byte
}

// DefaultFlightCap is the ring size used when NewFlight is given a
// non-positive capacity. 256 one-line records keep the ring at 16KB —
// half of a typical L1d cache — so always-on recording does not evict
// the simulator's working set; only failed sends and executions are
// recorded, so this still spans an entire mid-size traversal. Deployments
// that want deeper history pass a larger capacity (WithFlightCap).
const DefaultFlightCap = 256

// Flight is a fixed-size ring of recent data-plane events — the
// always-on post-mortem buffer. Recording is a struct store into a
// preallocated ring: no locks, no allocation, nothing proportional to
// history length. Sequence numbers are not stored per record; they are
// reconstructed from the ring position when dumping.
//
// Ownership mirrors the simulator it instruments: exactly one goroutine
// records (the Sim's event loop); Snapshot/WriteJSONL are for after the
// run, like reading a Network's counters.
type Flight struct {
	ring []FlightRecord
	mask uint64 // len(ring)-1; capacity is forced to a power of two
	seq  uint64

	names [][3]string // interned tag-name sets, indexed by NameIdx

	// Overflow storage for cookies longer than a record's inline bytes
	// (in practice: note text). Deduplicated so a repeated long cookie
	// cannot grow the table per record.
	longCookies []string
	longIdx     map[string]uint32
}

// NewFlight returns a recorder retaining the last capacity records
// (DefaultFlightCap if capacity <= 0). Capacity is rounded up to a power
// of two so the record path indexes the ring with a mask instead of an
// integer division.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	return &Flight{ring: make([]FlightRecord, cap2), mask: uint64(cap2 - 1)}
}

// RegisterTagNames interns one set of (up to three) tag-field names and
// returns the index records reference via NameIdx. Sets are deduplicated;
// past 256 distinct sets new registrations collapse onto index 0, which
// mislabels rather than corrupts (a deployment registers a handful).
func (f *Flight) RegisterTagNames(names [3]string) uint8 {
	for i := range f.names {
		if f.names[i] == names {
			return uint8(i)
		}
	}
	if len(f.names) >= 256 {
		return 0
	}
	f.names = append(f.names, names)
	return uint8(len(f.names) - 1)
}

// TagNames returns the interned name set for idx (zero strings when idx
// was never registered).
func (f *Flight) TagNames(idx uint8) [3]string {
	if int(idx) < len(f.names) {
		return f.names[idx]
	}
	return [3]string{}
}

// SetCookie stores s as the record's cookie: inline when it fits the
// record's fixed bytes (no allocation, no pointer), interned in the
// overflow table otherwise. The hot record paths only ever hit the
// inline case, which inlines into the caller; the interning slow path
// is outlined to keep it that way.
func (f *Flight) SetCookie(r *FlightRecord, s string) {
	if len(s) <= cookieInline {
		r.CookieLen = uint8(copy(r.Cookie[:], s))
		return
	}
	f.setCookieSlow(r, s)
}

func (f *Flight) setCookieSlow(r *FlightRecord, s string) {
	idx, ok := f.longIdx[s]
	if !ok {
		if f.longIdx == nil {
			f.longIdx = make(map[string]uint32)
		}
		idx = uint32(len(f.longCookies))
		f.longCookies = append(f.longCookies, s)
		f.longIdx[s] = idx
	}
	r.CookieLen = cookieOverflow
	binary.LittleEndian.PutUint32(r.Cookie[:4], idx)
}

// CookieString resolves a record's cookie text.
func (f *Flight) CookieString(r *FlightRecord) string {
	if r.CookieLen == cookieOverflow {
		idx := binary.LittleEndian.Uint32(r.Cookie[:4])
		if int(idx) < len(f.longCookies) {
			return f.longCookies[idx]
		}
		return "?"
	}
	n := int(r.CookieLen)
	if n > cookieInline {
		n = cookieInline
	}
	return string(r.Cookie[:n])
}

// Record appends r to the ring.
//
//simlint:hotpath
func (f *Flight) Record(r FlightRecord) {
	f.ring[f.seq&f.mask] = r
	f.seq++
}

// Slot claims the next ring entry, cleared, for the caller to fill in
// place. It halves the memory traffic of the hot record path versus
// Record (no stack-side struct construction followed by a copy). The
// pointer is only valid until the next Slot/Record call.
//
//simlint:hotpath
func (f *Flight) Slot() *FlightRecord {
	r := &f.ring[f.seq&f.mask]
	*r = FlightRecord{}
	f.seq++
	return r
}

// Cap returns the ring capacity — the number of records retained once
// the ring has wrapped. Batch recorders that claim several slots before
// filling them use it to bound how many claims can be outstanding.
func (f *Flight) Cap() int { return len(f.ring) }

// Len returns the number of retained records.
func (f *Flight) Len() int {
	if f.seq < uint64(len(f.ring)) {
		return int(f.seq)
	}
	return len(f.ring)
}

// Total returns the number of records written since creation (or Reset),
// including those the ring has evicted.
func (f *Flight) Total() uint64 { return f.seq }

// Seq returns the sequence number of the oldest retained record.
func (f *Flight) Seq() uint64 { return f.seq - uint64(f.Len()) }

// Snapshot returns the retained records, oldest first. The record at
// index i has sequence number Seq()+i. Resolve cookies and tag names
// through the recorder (CookieString, TagNames).
func (f *Flight) Snapshot() []FlightRecord {
	n := f.Len()
	out := make([]FlightRecord, 0, n)
	start := f.seq - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, f.ring[(start+i)&f.mask])
	}
	return out
}

// Reset discards all records and interned cookies (tag names survive:
// they are registration state, not history).
func (f *Flight) Reset() {
	f.seq = 0
	for i := range f.ring {
		f.ring[i] = FlightRecord{}
	}
	f.longCookies = nil
	f.longIdx = nil
}

// jsonRecord is the JSONL view of a record: kind as a string, tags
// trimmed to the populated prefix, zero-valued fields elided.
type jsonRecord struct {
	Seq     uint64      `json:"seq"`
	At      int64       `json:"at"`
	Kind    string      `json:"kind"`
	Sw      int16       `json:"sw"`
	Port    int16       `json:"port,omitempty"`
	To      int16       `json:"to,omitempty"`
	ToPort  int16       `json:"toPort,omitempty"`
	Eth     uint16      `json:"eth,omitempty"`
	Matched bool        `json:"matched,omitempty"`
	Lane    uint8       `json:"lane"`
	Cookie  string      `json:"cookie,omitempty"`
	Group   uint32      `json:"group,omitempty"`
	Bucket  int16       `json:"bucket,omitempty"`
	Tags    []FlightTag `json:"tags,omitempty"`
}

// jsonFor builds the JSONL view of one record, resolving cookies and tag
// names from this recorder's interned tables.
func (f *Flight) jsonFor(r *FlightRecord, seq uint64) jsonRecord {
	jr := jsonRecord{
		Seq: seq, At: r.At, Kind: r.Kind.String(),
		Sw: r.Sw, Port: r.Port, To: r.To, ToPort: r.ToPort,
		Eth: r.Eth, Matched: r.Matched, Lane: r.Lane,
		Cookie: f.CookieString(r), Group: r.Group, Bucket: r.Bucket,
	}
	if r.NumTags > 0 && int(r.NameIdx) < len(f.names) {
		names := &f.names[r.NameIdx]
		for t := uint8(0); t < r.NumTags && t < 3; t++ {
			jr.Tags = append(jr.Tags, FlightTag{Name: names[t], Val: uint64(r.Tags[t])})
		}
	}
	return jr
}

// WriteJSONL writes the retained records as one JSON object per line,
// oldest first — the post-mortem dump format. Sequence numbers are
// reconstructed from the ring position; cookies and tag names resolved
// from the interned tables.
func (f *Flight) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	n := uint64(f.Len())
	start := f.seq - n
	for i := uint64(0); i < n; i++ {
		r := &f.ring[(start+i)&f.mask]
		if err := enc.Encode(f.jsonFor(r, start+i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMergedJSONL interleaves the retained records of several recorders
// into one JSONL stream ordered by simulation time — the post-mortem view
// of a sharded run, where each lane keeps its own ring. Records with equal
// timestamps keep ring order (the rings slice order, then ring position),
// so the merged dump is deterministic for a deterministic run. Sequence
// numbers are reassigned 0..n-1 over the merged stream; each record's
// cookies and tag names resolve through its own recorder.
func WriteMergedJSONL(w io.Writer, rings []*Flight) error {
	type src struct {
		f   *Flight
		r   *FlightRecord
		pos uint64 // position within its ring's retained span
	}
	var all []src
	for _, f := range rings {
		if f == nil {
			continue
		}
		n := uint64(f.Len())
		start := f.seq - n
		for i := uint64(0); i < n; i++ {
			all = append(all, src{f: f, r: &f.ring[(start+i)&f.mask], pos: i})
		}
	}
	// Each ring is recorded by one monotonic clock, so a stable sort by
	// timestamp keeps per-ring order automatically; ties across rings
	// resolve by the rings slice order because that is the append order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].r.At < all[j].r.At })
	enc := json.NewEncoder(w)
	for i, s := range all {
		if err := enc.Encode(s.f.jsonFor(s.r, uint64(i))); err != nil {
			return err
		}
	}
	return nil
}
