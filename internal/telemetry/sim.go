package telemetry

import "sync/atomic"

// EventKind mirrors the simulator's event discriminant for per-kind
// accounting. The order must match internal/network's eventKind.
const (
	KindFunc = iota
	KindProcess
	KindPacketIn
	KindSelf
	numKinds
)

// KindNames are the exposition labels of the event kinds.
var KindNames = [numKinds]string{"func", "process", "packetin", "self"}

// maxSweepWorkers bounds the per-worker utilization series.
const maxSweepWorkers = 64

// Metrics is the process-global telemetry set. Every simulator in the
// process — including all parallel sweep workers — feeds the same
// instance (M), which is what makes a single /metrics scrape describe
// the whole process.
type Metrics struct {
	// Event loop.
	Events    [numKinds]Counter // processed events by kind
	Runs      Counter           // completed Run calls
	RunErrors Counter           // Runs that returned an error
	RunSimNs  Histogram         // per-Run span in simulation time
	RunWallNs Histogram         // per-Run span in wall-clock time
	HeapDepth Histogram         // event-heap depth, observed at every pop
	HeapPeak  MaxGauge          // process-wide peak heap depth
	QueueWait Histogram         // sim-time an event sat in the heap
	HopWallNs Histogram         // wall-clock per event, sampled 1 in 64

	// Data plane.
	Hops        Counter // link transmission attempts
	HopsDropped Counter // attempts swallowed by down/blackhole/lossy links
	PacketIns   Counter // packets delivered to the controller attachment
	SelfDeliver Counter // packets delivered to switch-local hosts

	// Packet freelist. Misses are counted at the pool's New hook (exact,
	// and rare enough for an atomic). Gets are counted by the simulator
	// core — one per emission, plus injection and observer pre-exec
	// clones — so the hot ClonePooled path carries no atomic; clones made
	// outside a running simulation (direct Switch API use) are not
	// counted.
	PoolGets   Counter // packet clones drawn from the freelist
	PoolMisses Counter // Gets that had to allocate a fresh packet

	// FlowTable dispatch: total lookups and entries probed (the ratio is
	// the dispatch fan-out; 1.0 = every lookup hit its first candidate),
	// split into lookups served by the compiled matcher vs the linear
	// fallback scan. FallbackLookups staying near zero is the health
	// signal that installs are recompiling dispatch; a stale matcher
	// bleeds lookups into FallbackLookups instead of undercounting.
	FlowLookups     Counter // total = matcher + fallback
	FlowScanned     Counter
	MatcherLookups  Counter // lookups served by the compiled matcher
	FallbackLookups Counter // lookups served by the linear/bucket fallback

	// StateCommits counts committed state-table writes — the stateful
	// backend's wire-speed EFSM transitions. Zero under the of13 backend.
	StateCommits Counter

	// Parallel sweep runner.
	SweepRuns    Counter                       // Sweep invocations
	SweepJobs    Counter                       // jobs completed
	SweepBusyNs  Counter                       // summed per-job wall time
	SweepWallNs  Counter                       // summed Sweep wall time
	SweepWorkers Gauge                         // workers of the last Sweep
	WorkerBusyNs [maxSweepWorkers]atomic.Int64 // per-worker busy ns, last Sweep
	WorkerJobs   [maxSweepWorkers]atomic.Int64 // per-worker job count, last Sweep

	// Monitoring application (internal/monitor).
	MonitorRounds     Counter
	MonitorWatchdog   Counter // watchdog (smart-counter) rounds run
	MonitorEvents     Counter // topology/blackhole events emitted
	MonitorBlackholes Counter // blackhole-found events

	// Flight recorder.
	FlightRecords Counter // records written across all recorders
	FlightDumps   Counter // post-mortem dumps written

	// Causal tracer.
	SpanRecords Counter // execution spans recorded across all lanes

	// Sharded engine runtime. The per-window values are staged lane- and
	// coordinator-locally (SimLocal) and flushed once per Run like every
	// other simulator counter; Shards is the worker-lane count of the most
	// recently built network (1 for the classic single loop).
	Shards         Gauge
	ShardWindows   Counter   // conservative windows opened
	WindowSimNs    Histogram // window width in simulation time (ns)
	BarrierStallNs Histogram // per-active-lane wall time idle at the barrier
	StagedDepth    Histogram // staged cross-lane deliveries per destination at a merge
	CutMsgs        Counter   // deliveries buffered across a shard boundary
	ShardBusyNs    Counter   // summed per-lane window busy wall time (ns)
	ShardBusyMaxNs Counter   // summed per-window max lane busy wall time (ns)
	LaneWindows    Counter   // lane-window executions (active lanes summed per window)
}

// ShardImbalance returns the load-imbalance ratio of the sharded engine:
// mean over windows of (max lane busy time / mean lane busy time),
// approximated from the aggregated counters. 1.0 is a perfectly balanced
// run; 0 means no sharded windows have executed.
func (m *Metrics) ShardImbalance() float64 {
	windows := m.ShardWindows.Load()
	busy := m.ShardBusyNs.Load()
	laneWindows := m.LaneWindows.Load()
	if windows == 0 || busy == 0 || laneWindows == 0 {
		return 0
	}
	maxMean := float64(m.ShardBusyMaxNs.Load()) / float64(windows)
	mean := float64(busy) / float64(laneWindows)
	if mean == 0 {
		return 0
	}
	return maxMean / mean
}

// M is the process-global metrics set.
var M = &Metrics{}

// ResetSweepWorkers clears the per-worker utilization slots at the start
// of a Sweep, so the exposed series describe the most recent sweep.
func (m *Metrics) ResetSweepWorkers(workers int) {
	if workers > maxSweepWorkers {
		workers = maxSweepWorkers
	}
	for i := 0; i < workers; i++ {
		m.WorkerBusyNs[i].Store(0)
		m.WorkerJobs[i].Store(0)
	}
}

// NoteSweepJob records one completed sweep job on worker w.
func (m *Metrics) NoteSweepJob(w int, busyNs int64) {
	m.SweepJobs.Inc()
	m.SweepBusyNs.Add(busyNs)
	if w >= 0 && w < maxSweepWorkers {
		m.WorkerBusyNs[w].Add(busyNs)
		m.WorkerJobs[w].Add(1)
	}
}

// PoolHitRate returns the packet-freelist hit rate in [0,1] (1 when the
// pool has never been asked).
func (m *Metrics) PoolHitRate() float64 {
	gets := m.PoolGets.Load()
	if gets == 0 {
		return 1
	}
	return 1 - float64(m.PoolMisses.Load())/float64(gets)
}

// SimLocal is the single-owner staging area one simulator records into.
// All fields are plain integers: the owning event loop is the only
// writer, and FlushTo publishes them to the global Metrics at Run
// boundaries. The zero value is ready to use.
type SimLocal struct {
	Events    [numKinds]uint64
	HeapDepth LocalHist
	QueueWait LocalHist
	HopWallNs LocalHist
	heapPeak  int64

	Hops        uint64
	HopsDropped uint64
	PacketIns   uint64
	SelfDeliver uint64

	PoolGets        uint64
	MatcherLookups  uint64
	FallbackLookups uint64
	FlowScanned     uint64
	StateCommits    uint64

	FlightRecords uint64
	SpanRecords   uint64

	// Sharded engine runtime. Windows, the window/stall/depth histograms
	// and the busy aggregates are written by the coordinator (the control
	// lane, with all workers parked); CutMsgs is written lane-locally on
	// the hop path and folded in by MergeFrom.
	Windows        uint64
	WindowSimNs    LocalHist
	BarrierStallNs LocalHist
	StagedDepth    LocalHist
	CutMsgs        uint64
	LaneBusyNs     uint64
	LaneBusyMaxNs  uint64
	LaneWindows    uint64
}

// ObserveHeapDepth records the event-heap depth at a pop.
func (s *SimLocal) ObserveHeapDepth(d int64) {
	s.HeapDepth.Observe(d)
	if d > s.heapPeak {
		s.heapPeak = d
	}
}

// MergeFrom folds another staging area into s and clears o — used by the
// sharded simulator to collapse per-lane staging into the control lane's
// before a single FlushTo publishes the Run. Both sides must be quiescent
// (the owning loops parked at a barrier or finished).
func (s *SimLocal) MergeFrom(o *SimLocal) {
	for k := 0; k < numKinds; k++ {
		s.Events[k] += o.Events[k]
		o.Events[k] = 0
	}
	s.HeapDepth.Merge(&o.HeapDepth)
	s.QueueWait.Merge(&o.QueueWait)
	s.HopWallNs.Merge(&o.HopWallNs)
	if o.heapPeak > s.heapPeak {
		s.heapPeak = o.heapPeak
	}
	o.heapPeak = 0

	move := func(dst, src *uint64) {
		*dst += *src
		*src = 0
	}
	move(&s.Hops, &o.Hops)
	move(&s.HopsDropped, &o.HopsDropped)
	move(&s.PacketIns, &o.PacketIns)
	move(&s.SelfDeliver, &o.SelfDeliver)
	move(&s.PoolGets, &o.PoolGets)
	move(&s.MatcherLookups, &o.MatcherLookups)
	move(&s.FallbackLookups, &o.FallbackLookups)
	move(&s.FlowScanned, &o.FlowScanned)
	move(&s.StateCommits, &o.StateCommits)
	move(&s.FlightRecords, &o.FlightRecords)
	move(&s.SpanRecords, &o.SpanRecords)
	move(&s.Windows, &o.Windows)
	s.WindowSimNs.Merge(&o.WindowSimNs)
	s.BarrierStallNs.Merge(&o.BarrierStallNs)
	s.StagedDepth.Merge(&o.StagedDepth)
	move(&s.CutMsgs, &o.CutMsgs)
	move(&s.LaneBusyNs, &o.LaneBusyNs)
	move(&s.LaneBusyMaxNs, &o.LaneBusyMaxNs)
	move(&s.LaneWindows, &o.LaneWindows)
}

// FlushTo publishes and clears the staged values. simNs/wallNs are the
// Run's spans; err reports whether the Run failed.
func (s *SimLocal) FlushTo(m *Metrics, simNs, wallNs int64, err bool) {
	for k := 0; k < numKinds; k++ {
		if s.Events[k] > 0 {
			m.Events[k].Add(int64(s.Events[k]))
			s.Events[k] = 0
		}
	}
	s.HeapDepth.FlushTo(&m.HeapDepth)
	s.QueueWait.FlushTo(&m.QueueWait)
	s.HopWallNs.FlushTo(&m.HopWallNs)
	m.HeapPeak.Observe(s.heapPeak)
	s.heapPeak = 0

	flush := func(c *Counter, v *uint64) {
		if *v > 0 {
			c.Add(int64(*v))
			*v = 0
		}
	}
	flush(&m.Hops, &s.Hops)
	flush(&m.HopsDropped, &s.HopsDropped)
	flush(&m.PacketIns, &s.PacketIns)
	flush(&m.SelfDeliver, &s.SelfDeliver)
	flush(&m.PoolGets, &s.PoolGets)
	if lk := s.MatcherLookups + s.FallbackLookups; lk > 0 {
		m.FlowLookups.Add(int64(lk))
	}
	flush(&m.MatcherLookups, &s.MatcherLookups)
	flush(&m.FallbackLookups, &s.FallbackLookups)
	flush(&m.FlowScanned, &s.FlowScanned)
	flush(&m.StateCommits, &s.StateCommits)
	flush(&m.FlightRecords, &s.FlightRecords)
	flush(&m.SpanRecords, &s.SpanRecords)

	flush(&m.ShardWindows, &s.Windows)
	s.WindowSimNs.FlushTo(&m.WindowSimNs)
	s.BarrierStallNs.FlushTo(&m.BarrierStallNs)
	s.StagedDepth.FlushTo(&m.StagedDepth)
	flush(&m.CutMsgs, &s.CutMsgs)
	flush(&m.ShardBusyNs, &s.LaneBusyNs)
	flush(&m.ShardBusyMaxNs, &s.LaneBusyMaxNs)
	flush(&m.LaneWindows, &s.LaneWindows)

	m.Runs.Inc()
	if err {
		m.RunErrors.Inc()
	}
	m.RunSimNs.Observe(simNs)
	m.RunWallNs.Observe(wallNs)
}
