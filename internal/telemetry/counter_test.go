package telemetry

import (
	"runtime"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from GOMAXPROCS goroutines
// and checks that no increment is lost — the correctness property the
// sharding must preserve. Run under -race in CI.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 100_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), int64(workers*perWorker); got != want {
		t.Fatalf("counter lost updates: got %d want %d", got, want)
	}
}

// TestCounterStressMixed mixes Add sizes with a concurrent Load loop;
// Load must never observe more than the true final total, and the final
// total must be exact. Run under -race in CI.
func TestCounterStressMixed(t *testing.T) {
	var c Counter
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 50_000
	ceiling := int64(workers * perWorker * 3)

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				if v := c.Load(); v > ceiling {
					t.Errorf("Load observed impossible total %d > %d", v, ceiling)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	var want int64
	var wantMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local int64
			for i := 0; i < perWorker; i++ {
				d := int64(1 + (w+i)%3)
				c.Add(d)
				local += d
			}
			wantMu.Lock()
			want += local
			wantMu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := c.Load(); got != want {
		t.Fatalf("counter got %d want %d", got, want)
	}
}

func TestGaugeAndMax(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Load() != 7 {
		t.Fatal("gauge")
	}
	var m MaxGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				m.Observe(int64(w*10_000 + i))
			}
		}(w)
	}
	wg.Wait()
	if m.Load() != 79_999 {
		t.Fatalf("max gauge got %d want 79999", m.Load())
	}
}
