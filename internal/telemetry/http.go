package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

var publishOnce sync.Once

// startTime anchors the /healthz uptime; the process start is close
// enough for an observability endpoint.
var startTime = time.Now()

// traceSource holds the registered /traces renderer (see SetTraceSource).
var traceSource atomic.Value // of func(io.Writer) error

// SetTraceSource registers the renderer behind the /traces endpoint —
// typically a closure writing the current deployment's causal timeline
// as Chrome trace-event JSON. The telemetry package cannot depend on the
// exporters (they sit above the simulator), so the deployment layer
// injects one; the last registration wins, and /traces answers 404
// until one exists. The renderer is invoked from HTTP goroutines and
// must be safe for concurrent use.
func SetTraceSource(fn func(w io.Writer) error) {
	traceSource.Store(fn)
}

// health is the /healthz payload: enough to tell which build is serving,
// how long it has been up, and what shape the simulator runs in.
type health struct {
	Status     string `json:"status"`
	GoVersion  string `json:"goVersion"`
	Module     string `json:"module,omitempty"`
	Revision   string `json:"revision,omitempty"`
	UptimeSecs int64  `json:"uptimeSecs"`
	Shards     int64  `json:"shards"`
	Runs       int64  `json:"runs"`
}

func healthz(w http.ResponseWriter, _ *http.Request) {
	h := health{
		Status:     "ok",
		GoVersion:  runtime.Version(),
		UptimeSecs: int64(time.Since(startTime).Seconds()),
		Shards:     M.Shards.Load(),
		Runs:       M.Runs.Load(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.Module = bi.Main.Path
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				h.Revision = s.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

// Handler returns the observability mux:
//
//	/metrics        Prometheus text exposition (global metrics + extras)
//	/telemetry      the same data as indented JSON (quantile views)
//	/healthz        build info, uptime, shard count
//	/traces         the causal timeline (Chrome trace-event JSON), once a
//	                source is registered via SetTraceSource
//	/debug/vars     expvar (includes a "smartsouth" variable)
//	/debug/pprof/*  the standard profiling endpoints
//
// extras are invoked after the global series on every /metrics scrape.
func Handler(extras ...func(w http.ResponseWriter)) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("smartsouth", expvar.Func(func() any { return M.Snap() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		M.WriteProm(w)
		for _, fn := range extras {
			fn(w)
		}
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(M.Snap())
	})
	mux.HandleFunc("/healthz", healthz)
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		fn, _ := traceSource.Load().(func(io.Writer) error)
		if fn == nil {
			http.Error(w, "no trace source registered (timeline tracing off)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := fn(w); err != nil {
			// Headers are committed; all we can do is cut the body short.
			return
		}
	})
	// The stdlib expvar handler sets its own Content-Type, but that is an
	// implementation detail of net/http — set it explicitly so a scrape
	// never sees text/plain from a future stdlib change.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		expvar.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler on it in a background goroutine,
// returning the bound address (useful with ":0") or an error. The
// listener stays open for the life of the process — the serve mode of
// the CLI binaries is explicitly "until killed".
func Serve(addr string, extras ...func(w http.ResponseWriter)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(extras...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
