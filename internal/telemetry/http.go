package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// Handler returns the observability mux:
//
//	/metrics        Prometheus text exposition (global metrics + extras)
//	/telemetry      the same data as indented JSON (quantile views)
//	/debug/vars     expvar (includes a "smartsouth" variable)
//	/debug/pprof/*  the standard profiling endpoints
//
// extras are invoked after the global series on every /metrics scrape.
func Handler(extras ...func(w http.ResponseWriter)) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("smartsouth", expvar.Func(func() any { return M.Snap() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		M.WriteProm(w)
		for _, fn := range extras {
			fn(w)
		}
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(M.Snap())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler on it in a background goroutine,
// returning the bound address (useful with ":0") or an error. The
// listener stays open for the life of the process — the serve mode of
// the CLI binaries is explicitly "until killed".
func Serve(addr string, extras ...func(w http.ResponseWriter)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(extras...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
