package telemetry

import "sort"

// SpanRecord is one execution span of the causal tracer: a single
// ExecBatch execution of one traced packet at one switch. Spans form a
// tree per trace — Parent is the span id carried by the packet when it
// arrived (zero for the trace root, the trigger's injection), and every
// emission of the execution inherits Span as its parent, so link
// crossings and packet clones become parent→child edges without any
// bookkeeping on the hop path.
//
// Span ids encode the recording lane: lane+1 in the high 32 bits, a
// lane-local sequence number below. That makes ids unique across lanes
// without atomics, keeps assignment deterministic, and lets a consumer
// recover the parent's lane from the id alone (SpanLane), which is how
// cross-shard edges are identified after the fact.
//
// Like FlightRecord the struct is pointer-free, so a ring of them is
// never scanned by the garbage collector and its stores carry no write
// barriers.
type SpanRecord struct {
	Span    uint64 // this span's id (never zero)
	Parent  uint64 // parent span id; zero marks a trace root
	At      int64  // simulation time of the execution, ns
	Trace   uint32 // traversal id, assigned at injection
	Sw      int32  // executing switch
	Lane    int16  // recording lane (shard id; the control lane on stray execs)
	Port    int16  // ingress port
	Eth     uint16
	Emits   uint8 // emissions of the execution, clamped at 255
	Matched bool
}

// SpanLane recovers the lane that assigned a span id (-1 for id 0, the
// synthetic parent of trace roots).
func SpanLane(id uint64) int { return int(id>>32) - 1 }

// DefaultSpanCap is the per-lane span-ring capacity used when the
// timeline option is given a non-positive capacity.
const DefaultSpanCap = 4096

// Spans is a fixed-size ring of SpanRecords, one per recording lane —
// the storage side of the causal tracer, modeled on Flight: recording is
// a struct store into a preallocated pointer-free ring, no locks, no
// allocation. Exactly one goroutine records (the owning lane's event
// loop); Snapshot and the merge helpers are for after the run.
type Spans struct {
	ring []SpanRecord
	mask uint64 // len(ring)-1; capacity is forced to a power of two
	seq  uint64
}

// NewSpans returns a ring retaining the last capacity spans
// (DefaultSpanCap if capacity <= 0), rounded up to a power of two.
func NewSpans(capacity int) *Spans {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	return &Spans{ring: make([]SpanRecord, cap2), mask: uint64(cap2 - 1)}
}

// Slot claims the next ring entry, cleared, for the caller to fill in
// place — the same claim-before/fill-after contract as Flight.Slot: the
// pointer is only valid until the next Slot call, so batch recorders
// must bound outstanding claims by Cap.
//
//simlint:hotpath
func (s *Spans) Slot() *SpanRecord {
	r := &s.ring[s.seq&s.mask]
	*r = SpanRecord{}
	s.seq++
	return r
}

// Cap returns the ring capacity.
func (s *Spans) Cap() int { return len(s.ring) }

// Len returns the number of retained spans.
func (s *Spans) Len() int {
	if s.seq < uint64(len(s.ring)) {
		return int(s.seq)
	}
	return len(s.ring)
}

// Total returns the number of spans recorded since creation (or Reset),
// including those the ring has evicted.
func (s *Spans) Total() uint64 { return s.seq }

// Snapshot returns the retained spans, oldest first.
func (s *Spans) Snapshot() []SpanRecord {
	n := s.Len()
	out := make([]SpanRecord, 0, n)
	start := s.seq - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, s.ring[(start+i)&s.mask])
	}
	return out
}

// AppendSince appends to dst the spans recorded after the first prev
// claims, oldest first. Spans the ring has already evicted are lost —
// only the retained suffix is appended. Together with Total this lets a
// consumer drain a ring incrementally between runs in O(new records)
// instead of re-snapshotting the whole ring.
func (s *Spans) AppendSince(dst []SpanRecord, prev uint64) []SpanRecord {
	if prev > s.seq {
		prev = 0 // the ring was Reset after the cursor was taken
	}
	n := s.seq - prev
	if retained := uint64(s.Len()); n > retained {
		n = retained
	}
	start := s.seq - n
	for i := uint64(0); i < n; i++ {
		dst = append(dst, s.ring[(start+i)&s.mask])
	}
	return dst
}

// Reset discards all retained spans.
func (s *Spans) Reset() {
	s.seq = 0
	for i := range s.ring {
		s.ring[i] = SpanRecord{}
	}
}

// MergedSpans interleaves the retained spans of several rings into one
// slice ordered by simulation time; ties keep ring order (the rings
// slice order, then ring position), so the merged view of a
// deterministic sharded run is itself deterministic. Nil rings are
// skipped.
func MergedSpans(rings []*Spans) []SpanRecord {
	var all []SpanRecord
	for _, s := range rings {
		if s == nil {
			continue
		}
		all = append(all, s.Snapshot()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}
