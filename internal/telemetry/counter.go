package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// numShards is the shard count of a Counter. A power of two a little
// above typical GOMAXPROCS keeps the probability of two busy goroutines
// landing on the same cache line low without bloating every counter.
const numShards = 32

// shard is one cache-line-padded slot. 64-byte alignment keeps two
// shards from false-sharing a line when adjacent goroutines hammer
// adjacent shards.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-free sharded monotonic counter. Add is wait-free and
// allocation-free; Load folds the shards. The zero value is ready to use.
//
// Sharding key: goroutines are distinguished by the address of a stack
// variable — distinct goroutines run on distinct stacks, so concurrent
// writers spread across shards instead of serializing on one cache line.
// The address is only hashed, never dereferenced or retained, so the
// variable does not escape.
type Counter struct {
	shards [numShards]shard
}

// shardIdx hashes the caller's stack address into a shard index.
func shardIdx() int {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h) & (numShards - 1)
}

// Add adds n to the counter.
//
//simlint:hotpath
func (c *Counter) Add(n int64) {
	c.shards[shardIdx()].v.Add(n)
}

// Inc adds one.
//
//simlint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total. Concurrent Adds may or may not be
// included — the usual weak-snapshot semantics of striped counters.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Reset zeroes the counter (test helper; not linearizable against
// concurrent Adds).
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge tracks a running maximum (e.g. peak event-heap depth).
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the maximum to v if v is larger.
func (m *MaxGauge) Observe(v int64) {
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (m *MaxGauge) Load() int64 { return m.v.Load() }

// Reset zeroes the maximum.
func (m *MaxGauge) Reset() { m.v.Store(0) }
