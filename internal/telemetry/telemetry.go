// Package telemetry is the always-on instrumentation core of the
// simulator: lock-free sharded counters, log-linear latency histograms,
// and a fixed-size flight recorder, all built on the standard library
// alone and all allocation-free on their record paths.
//
// The design splits recording from aggregation so the per-event cost
// stays in the low nanoseconds:
//
//   - The simulator's single-threaded event loop records into a plain
//     (non-atomic) SimLocal owned by one Sim. Recording is an integer
//     increment or a bucket bump — no atomics, no locks, no time.Now
//     except on a 1-in-64 sample of events.
//   - At Run boundaries the SimLocal is flushed into the process-global
//     Metrics set (sharded counters, atomic histograms), which many
//     parallel sweep workers share safely.
//   - Scrapers (the /metrics endpoint, dump JSON) read only the global
//     set, so they never race the hot loop.
//
// The flight recorder (see flight.go) is the post-mortem complement: a
// fixed ring of recent data-plane events that costs a struct store per
// record when nobody is looking and dumps structured JSONL when a sweep
// errors, an oracle diverges, or an install is rejected.
package telemetry

// Version tags the exposition format; bump when series are renamed.
const Version = "pr5"
