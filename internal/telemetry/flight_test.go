package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"unsafe"
)

// The record path is memory traffic, so the ring entry must stay within
// one cache line; growing it past 64 bytes is a performance regression
// the overhead benchmark would only catch later and noisily. It must
// also stay pointer-free: a pointer field would put GC write barriers on
// every record store and the whole ring on the garbage collector's scan
// list.
func TestFlightRecordFitsCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(FlightRecord{}); s > 64 {
		t.Fatalf("FlightRecord is %d bytes, must stay <= 64", s)
	}
	if typ := reflect.TypeOf(FlightRecord{}); typ.Comparable() == false || pointersIn(typ) {
		t.Fatal("FlightRecord must stay pointer-free")
	}
}

func pointersIn(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.String, reflect.Slice, reflect.Map, reflect.Chan, reflect.Interface, reflect.Func, reflect.UnsafePointer:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if pointersIn(t.Field(i).Type) {
				return true
			}
		}
	case reflect.Array:
		return pointersIn(t.Elem())
	}
	return false
}

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightRecord{At: int64(i), Kind: FlightExec, Sw: int16(i)})
	}
	if f.Total() != 10 || f.Len() != 4 {
		t.Fatalf("total=%d len=%d", f.Total(), f.Len())
	}
	if f.Seq() != 6 {
		t.Fatalf("oldest seq %d, want 6", f.Seq())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, r := range snap {
		if want := int16(6 + i); r.Sw != want {
			t.Fatalf("record %d: sw=%d want %d", i, r.Sw, want)
		}
	}
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 {
		t.Fatal("reset")
	}
}

func TestFlightJSONL(t *testing.T) {
	f := NewFlight(8)
	idx := f.RegisterTagNames([3]string{"start", "cur", ""})
	r := FlightRecord{
		At: 1000, Kind: FlightExec, Sw: 3, Port: 2, Eth: 0x0901, Matched: true,
		NumTags: 2, NameIdx: idx,
		Tags: [3]uint32{1, 4},
	}
	f.SetCookie(&r, "snapshot")
	f.Record(r)
	f.Record(FlightRecord{At: 1001, Kind: FlightSend, Sw: 3, Port: 1, To: 4, ToPort: 2, Eth: 0x0901})
	f.Record(FlightRecord{At: 1002, Kind: FlightPacketIn, Sw: 0, Eth: 0x0901})

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines, got %d:\n%s", len(lines), buf.String())
	}
	// Every line must be valid standalone JSON.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var decoded []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		decoded = append(decoded, m)
	}
	if decoded[0]["kind"] != "exec" || decoded[1]["kind"] != "send" || decoded[2]["kind"] != "packet-in" {
		t.Fatalf("kinds wrong: %v", decoded)
	}
	for i, m := range decoded {
		if m["seq"] != float64(i) {
			t.Fatalf("line %d: seq %v, want %d", i, m["seq"], i)
		}
	}
	tags, ok := decoded[0]["tags"].([]any)
	if !ok || len(tags) != 2 {
		t.Fatalf("exec record must carry its 2 decoded tags, got %v", decoded[0]["tags"])
	}
	first := tags[0].(map[string]any)
	if first["name"] != "start" || first["val"] != float64(1) {
		t.Fatalf("tag decode %v", first)
	}
	if _, present := decoded[2]["tags"]; present {
		t.Fatal("untagged record must omit tags")
	}
}

// Sequence numbers survive ring wraparound: after evictions the dump
// starts at the oldest retained record's true sequence.
func TestFlightJSONLSeqAfterWraparound(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 11; i++ {
		f.Record(FlightRecord{At: int64(i), Kind: FlightExec, Sw: int16(i)})
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	want := uint64(7)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if m["seq"] != float64(want) || m["sw"] != float64(want) {
			t.Fatalf("got seq=%v sw=%v, want %d", m["seq"], m["sw"], want)
		}
		want++
	}
	if want != 11 {
		t.Fatalf("dumped up to seq %d, want 11", want)
	}
}

// Cookies beyond the record's inline bytes (note text) round-trip via
// the overflow table, and repeats are deduplicated.
func TestFlightLongCookieInterning(t *testing.T) {
	f := NewFlight(4)
	long := "soak oracle divergence: snapshot root 5 saw 17 nodes"
	for i := 0; i < 3; i++ {
		var r FlightRecord
		f.SetCookie(&r, long)
		r.Kind = FlightNote
		f.Record(r)
	}
	if len(f.longCookies) != 1 {
		t.Fatalf("repeated long cookie interned %d times", len(f.longCookies))
	}
	snap := f.Snapshot()
	if got := f.CookieString(&snap[0]); got != long {
		t.Fatalf("long cookie resolved to %q", got)
	}
	var short FlightRecord
	f.SetCookie(&short, "svc8802/n7/done-p2")
	if got := f.CookieString(&short); got != "svc8802/n7/done-p2" {
		t.Fatalf("inline cookie resolved to %q", got)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), long) {
		t.Fatalf("dump lost the note text:\n%s", buf.String())
	}
}

func TestFlightTagNameInterning(t *testing.T) {
	f := NewFlight(4)
	a := f.RegisterTagNames([3]string{"start", "par", "cur"})
	b := f.RegisterTagNames([3]string{"x", "", ""})
	if again := f.RegisterTagNames([3]string{"start", "par", "cur"}); again != a {
		t.Fatalf("re-registration returned %d, want interned %d", again, a)
	}
	if a == b {
		t.Fatal("distinct name sets interned to the same index")
	}
	if got := f.TagNames(b); got[0] != "x" {
		t.Fatalf("TagNames(%d) = %v", b, got)
	}
	if got := f.TagNames(200); got != ([3]string{}) {
		t.Fatalf("unregistered index resolved to %v", got)
	}
}

func TestFlightKindString(t *testing.T) {
	for k, want := range map[FlightKind]string{
		FlightExec: "exec", FlightRule: "rule", FlightGroup: "group",
		FlightSend: "send", FlightPacketIn: "packet-in", FlightSelf: "self", FlightNote: "note",
	} {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
}
