package telemetry

import (
	"reflect"
	"testing"
	"unsafe"
)

// Like the flight record, a span record is pure memory traffic on the
// execution path: it must stay small and pointer-free so the ring is
// never GC-scanned and its stores carry no write barriers.
func TestSpanRecordCompactAndPointerFree(t *testing.T) {
	if s := unsafe.Sizeof(SpanRecord{}); s > 64 {
		t.Fatalf("SpanRecord is %d bytes, must stay <= 64", s)
	}
	if typ := reflect.TypeOf(SpanRecord{}); typ.Comparable() == false || pointersIn(typ) {
		t.Fatal("SpanRecord must stay pointer-free")
	}
}

func TestSpanLane(t *testing.T) {
	if got := SpanLane(uint64(3)<<32 | 17); got != 2 {
		t.Fatalf("SpanLane(lane-2 id) = %d, want 2", got)
	}
	if got := SpanLane(0); got != -1 {
		t.Fatalf("SpanLane(0) = %d, want -1 (synthetic root parent)", got)
	}
}

func TestSpansRing(t *testing.T) {
	s := NewSpans(10)
	if s.Cap() != 16 {
		t.Fatalf("Cap() = %d, want 16 (pow2 rounding of 10)", s.Cap())
	}
	for i := 0; i < 20; i++ {
		r := s.Slot()
		r.Span = uint64(i + 1)
		r.At = int64(i)
	}
	if s.Total() != 20 {
		t.Fatalf("Total() = %d, want 20", s.Total())
	}
	if s.Len() != 16 {
		t.Fatalf("Len() = %d, want 16 (ring retains capacity)", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot() has %d records, want 16", len(snap))
	}
	for i, r := range snap {
		if want := int64(i + 4); r.At != want {
			t.Fatalf("Snapshot()[%d].At = %d, want %d (oldest first)", i, r.At, want)
		}
	}
	// Slot must hand back a cleared record even when recycling.
	r := s.Slot()
	if *r != (SpanRecord{}) {
		t.Fatalf("recycled Slot() not cleared: %+v", *r)
	}
	s.Reset()
	if s.Total() != 0 || s.Len() != 0 {
		t.Fatalf("after Reset: Total=%d Len=%d, want 0/0", s.Total(), s.Len())
	}
}

func TestSpansDefaultCap(t *testing.T) {
	if got := NewSpans(0).Cap(); got != DefaultSpanCap {
		t.Fatalf("NewSpans(0).Cap() = %d, want DefaultSpanCap=%d", got, DefaultSpanCap)
	}
}

func TestMergedSpans(t *testing.T) {
	a, b := NewSpans(8), NewSpans(8)
	// Interleaved times, with a tie at At=5 that must keep ring order
	// (a's record before b's).
	for _, at := range []int64{1, 5, 9} {
		r := a.Slot()
		r.At, r.Lane = at, 0
	}
	for _, at := range []int64{2, 5, 8} {
		r := b.Slot()
		r.At, r.Lane = at, 1
	}
	got := MergedSpans([]*Spans{a, nil, b})
	wantAt := []int64{1, 2, 5, 5, 8, 9}
	wantLane := []int16{0, 1, 0, 1, 1, 0}
	if len(got) != len(wantAt) {
		t.Fatalf("merged %d records, want %d", len(got), len(wantAt))
	}
	for i := range got {
		if got[i].At != wantAt[i] || got[i].Lane != wantLane[i] {
			t.Fatalf("merged[%d] = (At=%d, Lane=%d), want (At=%d, Lane=%d)",
				i, got[i].At, got[i].Lane, wantAt[i], wantLane[i])
		}
	}
}
