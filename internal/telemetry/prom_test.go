package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// newTestMetrics builds a populated Metrics so exposition tests don't
// depend on (or mutate) the global M.
func newTestMetrics() *Metrics {
	m := &Metrics{}
	m.Events[KindProcess].Add(40)
	m.Events[KindPacketIn].Add(2)
	m.Runs.Inc()
	for v := int64(100); v <= 1000; v += 100 {
		m.HopWallNs.Observe(v)
		m.HeapDepth.Observe(v / 100)
	}
	m.Hops.Add(38)
	m.PoolGets.Add(10)
	m.PoolMisses.Add(2)
	m.FlowLookups.Add(40)
	m.FlowScanned.Add(52)
	m.SweepWorkers.Set(2)
	m.WorkerBusyNs[0].Store(5000)
	m.WorkerBusyNs[1].Store(4000)
	m.WorkerJobs[0].Store(3)
	m.WorkerJobs[1].Store(2)
	return m
}

// TestPromExposition pins the series names the CI smoke job greps for.
func TestPromExposition(t *testing.T) {
	m := newTestMetrics()
	var sb strings.Builder
	m.WriteProm(&sb)
	out := sb.String()

	for _, want := range []string{
		"smartsouth_events_total{kind=\"process\"} 40",
		"smartsouth_hop_latency_wall_ns_bucket{le=",
		"smartsouth_hop_latency_wall_ns_count 10",
		"smartsouth_event_heap_depth_count 10",
		"smartsouth_pool_hit_rate 0.8",
		"smartsouth_hops_total 38",
		"smartsouth_flowtable_fanout 1.3",
		"smartsouth_sweep_worker_busy_ns{worker=\"0\"} 5000",
		"smartsouth_flight_records_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at count.
	if !strings.Contains(out, "smartsouth_hop_latency_wall_ns_bucket{le=\"+Inf\"} 10") {
		t.Error("missing +Inf bucket")
	}
	// Every # TYPE line names a valid type.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Errorf("malformed TYPE line %q", line)
			}
		}
	}
}

func TestSnapJSON(t *testing.T) {
	m := newTestMetrics()
	s := m.Snap()
	if s.Events["process"] != 40 || s.PoolHitRate != 0.8 {
		t.Fatalf("snap %+v", s)
	}
	if s.HopWallNs.Count != 10 || s.HopWallNs.P50 < 500 {
		t.Fatalf("hop view %+v", s.HopWallNs)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if _, ok := back["hopWallNs"]; !ok {
		t.Fatal("JSON missing hopWallNs")
	}
}

func TestServeEndpoints(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", func(w http.ResponseWriter) {
		io.WriteString(w, "smartsouth_extra_series 1\n")
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "smartsouth_runs_total") || !strings.Contains(metrics, "smartsouth_extra_series 1") {
		t.Fatalf("/metrics missing series:\n%s", metrics)
	}
	tele := get("/telemetry")
	var snap map[string]any
	if err := json.Unmarshal([]byte(tele), &snap); err != nil {
		t.Fatalf("/telemetry not JSON: %v", err)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "\"smartsouth\"") {
		t.Fatal("/debug/vars missing smartsouth expvar")
	}
}
