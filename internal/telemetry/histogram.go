package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear bucketing: values 0..7 get exact buckets; every octave above
// is split into 8 linear sub-buckets, so the relative quantization error
// is bounded by 12.5% across the whole int64 range. The scheme is the
// fixed-layout cousin of HdrHistogram — no configuration, no allocation,
// bucket index from two shifts and a bits.Len.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	// numBuckets covers non-negative int64: octaves 3..62 plus the exact
	// low range.
	numBuckets = (64 - subBits) * subBuckets
)

// bucketOf maps a non-negative value to its bucket index. Negative
// values clamp to bucket 0 (they only arise from clock retrogression).
func bucketOf(v int64) int {
	if v < subBuckets {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int(v>>(exp-subBits)) & (subBuckets - 1)
	return (exp-subBits+1)*subBuckets + sub
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBits - 1
	sub := int64(i & (subBuckets - 1))
	lower := int64(1)<<exp + sub<<(exp-subBits)
	return lower + int64(1)<<(exp-subBits) - 1
}

// Histogram is the shared, concurrency-safe aggregate. Observe is
// lock-free (three atomic adds); the intended high-rate feed is a
// LocalHist flushed at Run boundaries, which amortizes even that.
// The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     MaxGauge
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketCount is one non-empty bucket of a snapshot.
type BucketCount struct {
	// Upper is the inclusive upper bound of the bucket.
	Upper int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the non-empty buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := 0; i < numBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i), Count: c})
		}
	}
	return s
}

// Reset zeroes the histogram (test helper; not linearizable against
// concurrent Observes).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Reset()
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) with
// the bucketing's 12.5% relative error; 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count-1)) + 1
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Upper
		}
	}
	return s.Max
}

// LocalHist is the single-owner histogram the event loop records into:
// plain integers, no atomics. FlushTo folds it into a shared Histogram
// and clears it; only the touched bucket span is walked, so a flush
// after a typical traversal is a few dozen adds.
type LocalHist struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     int64
	max     int64
	lo, hi  int
}

// Observe records one value. Not safe for concurrent use — a LocalHist
// belongs to exactly one goroutine, like the Sim that owns it.
func (l *LocalHist) Observe(v int64) {
	b := bucketOf(v)
	if l.count == 0 {
		l.lo, l.hi = b, b
	} else {
		if b < l.lo {
			l.lo = b
		}
		if b > l.hi {
			l.hi = b
		}
	}
	l.buckets[b]++
	l.count++
	l.sum += v
	if v > l.max {
		l.max = v
	}
}

// Count returns the number of unflushed observations.
func (l *LocalHist) Count() uint64 { return l.count }

// Merge folds another LocalHist into l and resets o — how a sharded
// simulation folds its per-lane staging into the control lane's before
// one FlushTo publishes the union. Both histograms must be quiescent
// (their owning loops parked), like FlushTo.
func (l *LocalHist) Merge(o *LocalHist) {
	if o.count == 0 {
		return
	}
	if l.count == 0 {
		l.lo, l.hi = o.lo, o.hi
	} else {
		if o.lo < l.lo {
			l.lo = o.lo
		}
		if o.hi > l.hi {
			l.hi = o.hi
		}
	}
	for i := o.lo; i <= o.hi; i++ {
		if c := o.buckets[i]; c > 0 {
			l.buckets[i] += c
			o.buckets[i] = 0
		}
	}
	l.count += o.count
	l.sum += o.sum
	if o.max > l.max {
		l.max = o.max
	}
	o.count, o.sum, o.max = 0, 0, 0
	o.lo, o.hi = 0, 0
}

// FlushTo folds the local counts into h and resets the local state.
func (l *LocalHist) FlushTo(h *Histogram) {
	if l.count == 0 {
		return
	}
	for i := l.lo; i <= l.hi; i++ {
		if c := l.buckets[i]; c > 0 {
			h.buckets[i].Add(int64(c))
			l.buckets[i] = 0
		}
	}
	h.count.Add(int64(l.count))
	h.sum.Add(l.sum)
	h.max.Observe(l.max)
	l.count, l.sum, l.max = 0, 0, 0
	l.lo, l.hi = 0, 0
}
