package telemetry

import (
	"fmt"
	"io"
)

// promHist writes one histogram in Prometheus text exposition format.
// Only non-empty buckets are emitted (cumulatively), plus the mandatory
// +Inf bucket, _sum and _count.
func promHist(w io.Writer, name, help string, s HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Upper, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// WriteProm writes the whole metrics set as Prometheus text exposition.
func (m *Metrics) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP smartsouth_events_total simulator events processed, by kind\n")
	fmt.Fprintf(w, "# TYPE smartsouth_events_total counter\n")
	for k := 0; k < numKinds; k++ {
		fmt.Fprintf(w, "smartsouth_events_total{kind=%q} %d\n", KindNames[k], m.Events[k].Load())
	}
	promCounter(w, "smartsouth_runs_total", "completed simulator Run calls", m.Runs.Load())
	promCounter(w, "smartsouth_run_errors_total", "Run calls that returned an error", m.RunErrors.Load())
	promHist(w, "smartsouth_run_sim_ns", "per-Run span in simulation time (ns)", m.RunSimNs.Snapshot())
	promHist(w, "smartsouth_run_wall_ns", "per-Run span in wall-clock time (ns)", m.RunWallNs.Snapshot())
	promHist(w, "smartsouth_event_heap_depth", "event-heap depth observed at every pop", m.HeapDepth.Snapshot())
	promGauge(w, "smartsouth_event_heap_peak", "peak event-heap depth", float64(m.HeapPeak.Load()))
	promHist(w, "smartsouth_event_queue_wait_ns", "sim-time an event sat in the heap (ns)", m.QueueWait.Snapshot())
	promHist(w, "smartsouth_hop_latency_wall_ns", "wall-clock per processed event (ns), sampled 1 in 64", m.HopWallNs.Snapshot())

	promCounter(w, "smartsouth_hops_total", "link transmission attempts", m.Hops.Load())
	promCounter(w, "smartsouth_hops_dropped_total", "transmission attempts swallowed by the link", m.HopsDropped.Load())
	promCounter(w, "smartsouth_packet_ins_total", "packets delivered to the controller attachment", m.PacketIns.Load())
	promCounter(w, "smartsouth_self_delivered_total", "packets delivered to switch-local hosts", m.SelfDeliver.Load())

	promCounter(w, "smartsouth_pool_gets_total", "packet freelist Get calls", m.PoolGets.Load())
	promCounter(w, "smartsouth_pool_misses_total", "packet freelist Gets that allocated", m.PoolMisses.Load())
	promGauge(w, "smartsouth_pool_hit_rate", "packet freelist hit rate (1 = every clone recycled)", m.PoolHitRate())

	promCounter(w, "smartsouth_flowtable_lookups_total", "FlowTable lookups", m.FlowLookups.Load())
	promCounter(w, "smartsouth_flowtable_matcher_lookups_total", "lookups served by the compiled matcher", m.MatcherLookups.Load())
	promCounter(w, "smartsouth_flowtable_fallback_lookups_total", "lookups served by the linear fallback scan", m.FallbackLookups.Load())
	promCounter(w, "smartsouth_flowtable_entries_scanned_total", "flow entries probed across all lookups", m.FlowScanned.Load())
	promCounter(w, "smartsouth_state_commits_total", "committed state-table writes (stateful-backend EFSM transitions)", m.StateCommits.Load())
	if lk := m.FlowLookups.Load(); lk > 0 {
		promGauge(w, "smartsouth_flowtable_fanout", "mean entries probed per lookup (dispatch-index fan-out)",
			float64(m.FlowScanned.Load())/float64(lk))
	}

	promCounter(w, "smartsouth_sweep_runs_total", "parallel Sweep invocations", m.SweepRuns.Load())
	promCounter(w, "smartsouth_sweep_jobs_total", "sweep jobs completed", m.SweepJobs.Load())
	promCounter(w, "smartsouth_sweep_busy_ns_total", "summed per-job wall time (ns)", m.SweepBusyNs.Load())
	promCounter(w, "smartsouth_sweep_wall_ns_total", "summed Sweep wall time (ns)", m.SweepWallNs.Load())
	workers := m.SweepWorkers.Load()
	promGauge(w, "smartsouth_sweep_workers", "workers of the last Sweep", float64(workers))
	if workers > 0 {
		fmt.Fprintf(w, "# HELP smartsouth_sweep_worker_busy_ns per-worker busy time of the last Sweep (ns)\n")
		fmt.Fprintf(w, "# TYPE smartsouth_sweep_worker_busy_ns gauge\n")
		for i := int64(0); i < workers && i < maxSweepWorkers; i++ {
			fmt.Fprintf(w, "smartsouth_sweep_worker_busy_ns{worker=\"%d\"} %d\n", i, m.WorkerBusyNs[i].Load())
		}
		fmt.Fprintf(w, "# HELP smartsouth_sweep_worker_jobs per-worker job count of the last Sweep\n")
		fmt.Fprintf(w, "# TYPE smartsouth_sweep_worker_jobs gauge\n")
		for i := int64(0); i < workers && i < maxSweepWorkers; i++ {
			fmt.Fprintf(w, "smartsouth_sweep_worker_jobs{worker=\"%d\"} %d\n", i, m.WorkerJobs[i].Load())
		}
	}

	promCounter(w, "smartsouth_monitor_rounds_total", "monitoring rounds", m.MonitorRounds.Load())
	promCounter(w, "smartsouth_monitor_watchdog_rounds_total", "blackhole watchdog rounds", m.MonitorWatchdog.Load())
	promCounter(w, "smartsouth_monitor_events_total", "topology/blackhole events emitted", m.MonitorEvents.Load())
	promCounter(w, "smartsouth_monitor_blackholes_total", "blackhole-found events", m.MonitorBlackholes.Load())

	promCounter(w, "smartsouth_flight_records_total", "flight-recorder records written", m.FlightRecords.Load())
	promCounter(w, "smartsouth_flight_dumps_total", "flight-recorder post-mortem dumps", m.FlightDumps.Load())

	promCounter(w, "smartsouth_span_records_total", "causal-tracer execution spans recorded", m.SpanRecords.Load())

	promGauge(w, "smartsouth_shards", "worker-lane count of the most recently built network", float64(m.Shards.Load()))
	promCounter(w, "smartsouth_shard_windows_total", "conservative windows opened by the sharded coordinator", m.ShardWindows.Load())
	promHist(w, "smartsouth_shard_window_sim_ns", "window width in simulation time (ns)", m.WindowSimNs.Snapshot())
	promHist(w, "smartsouth_shard_barrier_stall_ns", "per-active-lane wall time idle at the window barrier (ns)", m.BarrierStallNs.Snapshot())
	promHist(w, "smartsouth_shard_staged_depth", "staged cross-lane deliveries per destination at a barrier merge", m.StagedDepth.Snapshot())
	promCounter(w, "smartsouth_shard_cut_msgs_total", "deliveries buffered across a shard boundary", m.CutMsgs.Load())
	promCounter(w, "smartsouth_shard_busy_ns_total", "summed per-lane window busy wall time (ns)", m.ShardBusyNs.Load())
	promCounter(w, "smartsouth_shard_busy_max_ns_total", "summed per-window max lane busy wall time (ns)", m.ShardBusyMaxNs.Load())
	promCounter(w, "smartsouth_shard_lane_windows_total", "lane-window executions (active lanes summed per window)", m.LaneWindows.Load())
	if imb := m.ShardImbalance(); imb > 0 {
		promGauge(w, "smartsouth_shard_load_imbalance", "mean max/mean lane busy time per window (1.0 = balanced)", imb)
	}
}

// HistView is the quantile-annotated JSON view of a histogram.
type HistView struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`

	Buckets []BucketCount `json:"buckets,omitempty"`
}

// View renders a snapshot with its standard quantiles.
func (s HistSnapshot) View() HistView {
	return HistView{
		Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
		P50: s.Quantile(0.50), P90: s.Quantile(0.90), P99: s.Quantile(0.99),
		Max: s.Max, Buckets: s.Buckets,
	}
}

// Snapshot is the JSON view of the whole metrics set — the payload of
// the extended telemetry dump.
type Snapshot struct {
	Events map[string]int64 `json:"events"`
	Runs   int64            `json:"runs"`
	Errors int64            `json:"runErrors"`

	RunSimNs  HistView `json:"runSimNs"`
	RunWallNs HistView `json:"runWallNs"`
	HeapDepth HistView `json:"heapDepth"`
	HeapPeak  int64    `json:"heapPeak"`
	QueueWait HistView `json:"queueWaitNs"`
	HopWallNs HistView `json:"hopWallNs"`

	Hops        int64 `json:"hops"`
	HopsDropped int64 `json:"hopsDropped"`
	PacketIns   int64 `json:"packetIns"`
	SelfDeliver int64 `json:"selfDelivered"`

	PoolGets    int64   `json:"poolGets"`
	PoolMisses  int64   `json:"poolMisses"`
	PoolHitRate float64 `json:"poolHitRate"`

	FlowLookups     int64   `json:"flowLookups"`
	MatcherLookups  int64   `json:"matcherLookups"`
	FallbackLookups int64   `json:"fallbackLookups"`
	FlowScanned     int64   `json:"flowScanned"`
	FlowFanout      float64 `json:"flowFanout"`
	StateCommits    int64   `json:"stateCommits"`

	SweepRuns    int64   `json:"sweepRuns"`
	SweepJobs    int64   `json:"sweepJobs"`
	SweepBusyNs  int64   `json:"sweepBusyNs"`
	SweepWallNs  int64   `json:"sweepWallNs"`
	SweepWorkers []int64 `json:"sweepWorkerBusyNs,omitempty"`

	MonitorRounds     int64 `json:"monitorRounds"`
	MonitorWatchdog   int64 `json:"monitorWatchdogRounds"`
	MonitorEvents     int64 `json:"monitorEvents"`
	MonitorBlackholes int64 `json:"monitorBlackholes"`

	FlightRecords int64 `json:"flightRecords"`
	FlightDumps   int64 `json:"flightDumps"`

	SpanRecords int64 `json:"spanRecords"`

	Shards         int64    `json:"shards"`
	ShardWindows   int64    `json:"shardWindows"`
	WindowSimNs    HistView `json:"shardWindowSimNs"`
	BarrierStallNs HistView `json:"shardBarrierStallNs"`
	StagedDepth    HistView `json:"shardStagedDepth"`
	CutMsgs        int64    `json:"shardCutMsgs"`
	ShardBusyNs    int64    `json:"shardBusyNs"`
	ShardBusyMaxNs int64    `json:"shardBusyMaxNs"`
	LaneWindows    int64    `json:"shardLaneWindows"`
	ShardImbalance float64  `json:"shardLoadImbalance"`
}

// Snap copies the current values into a Snapshot.
func (m *Metrics) Snap() Snapshot {
	s := Snapshot{
		Events: make(map[string]int64, numKinds),
		Runs:   m.Runs.Load(), Errors: m.RunErrors.Load(),
		RunSimNs: m.RunSimNs.Snapshot().View(), RunWallNs: m.RunWallNs.Snapshot().View(),
		HeapDepth: m.HeapDepth.Snapshot().View(), HeapPeak: m.HeapPeak.Load(),
		QueueWait: m.QueueWait.Snapshot().View(), HopWallNs: m.HopWallNs.Snapshot().View(),
		Hops: m.Hops.Load(), HopsDropped: m.HopsDropped.Load(),
		PacketIns: m.PacketIns.Load(), SelfDeliver: m.SelfDeliver.Load(),
		PoolGets: m.PoolGets.Load(), PoolMisses: m.PoolMisses.Load(), PoolHitRate: m.PoolHitRate(),
		FlowLookups: m.FlowLookups.Load(), FlowScanned: m.FlowScanned.Load(),
		MatcherLookups: m.MatcherLookups.Load(), FallbackLookups: m.FallbackLookups.Load(),
		StateCommits: m.StateCommits.Load(),
		SweepRuns:    m.SweepRuns.Load(), SweepJobs: m.SweepJobs.Load(),
		SweepBusyNs: m.SweepBusyNs.Load(), SweepWallNs: m.SweepWallNs.Load(),
		MonitorRounds: m.MonitorRounds.Load(), MonitorWatchdog: m.MonitorWatchdog.Load(),
		MonitorEvents: m.MonitorEvents.Load(), MonitorBlackholes: m.MonitorBlackholes.Load(),
		FlightRecords: m.FlightRecords.Load(), FlightDumps: m.FlightDumps.Load(),
		SpanRecords: m.SpanRecords.Load(),
		Shards:      m.Shards.Load(), ShardWindows: m.ShardWindows.Load(),
		WindowSimNs:    m.WindowSimNs.Snapshot().View(),
		BarrierStallNs: m.BarrierStallNs.Snapshot().View(),
		StagedDepth:    m.StagedDepth.Snapshot().View(),
		CutMsgs:        m.CutMsgs.Load(),
		ShardBusyNs:    m.ShardBusyNs.Load(), ShardBusyMaxNs: m.ShardBusyMaxNs.Load(),
		LaneWindows: m.LaneWindows.Load(), ShardImbalance: m.ShardImbalance(),
	}
	for k := 0; k < numKinds; k++ {
		s.Events[KindNames[k]] = m.Events[k].Load()
	}
	if s.FlowLookups > 0 {
		s.FlowFanout = float64(s.FlowScanned) / float64(s.FlowLookups)
	}
	for i := int64(0); i < m.SweepWorkers.Load() && i < maxSweepWorkers; i++ {
		s.SweepWorkers = append(s.SweepWorkers, m.WorkerBusyNs[i].Load())
	}
	return s
}
