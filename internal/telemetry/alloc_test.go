package telemetry

import (
	"os"
	"testing"
)

// TestRecordPathZeroAlloc guards the always-on budget: every operation
// on the hot record path must be allocation-free, including the
// stack-address shard probe (which must not force an escape).
func TestRecordPathZeroAlloc(t *testing.T) {
	if os.Getenv("RACE") != "" {
		t.Skip("allocation counts differ under the race detector")
	}
	var c Counter
	var h Histogram
	var l LocalHist
	f := NewFlight(64)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Load", func() { _ = c.Load() }},
		{"Histogram.Observe", func() { h.Observe(1234) }},
		{"LocalHist.Observe", func() { l.Observe(1234) }},
		{"LocalHist.FlushTo", func() { l.FlushTo(&h) }},
		{"Flight.Record", func() {
			f.Record(FlightRecord{Kind: FlightSend, Sw: 1, Port: 2, To: 3, Eth: 0x0901})
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkLocalHistObserve(b *testing.B) {
	var l LocalHist
	for i := 0; i < b.N; i++ {
		l.Observe(int64(i))
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(DefaultFlightCap)
	r := FlightRecord{Kind: FlightSend, Sw: 1, Port: 2, To: 3, Eth: 0x0901}
	for i := 0; i < b.N; i++ {
		f.Record(r)
	}
}
