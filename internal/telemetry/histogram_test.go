package telemetry

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestBucketRoundTrip pins the log-linear scheme: every value lands in a
// bucket whose bounds contain it, bounds are monotone, and the relative
// quantization error stays within one sub-bucket (12.5%).
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, 1<<62 - 1}
	for _, v := range values {
		b := bucketOf(v)
		up := bucketUpper(b)
		if v > up {
			t.Errorf("value %d above its bucket upper %d (bucket %d)", v, up, b)
		}
		if b > 0 {
			prevUp := bucketUpper(b - 1)
			if v <= prevUp {
				t.Errorf("value %d should be in bucket %d (upper %d)", v, b-1, prevUp)
			}
		}
		if v >= subBuckets {
			if err := float64(up-v) / float64(v); err > 0.125 {
				t.Errorf("value %d: relative error %.3f > 0.125", v, err)
			}
		}
	}
	if bucketOf(-5) != 0 {
		t.Error("negative values must clamp to bucket 0")
	}
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket bounds not monotone at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	// Quantiles are upper bounds with <=12.5% error.
	for _, tc := range []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := s.Quantile(tc.q)
		if got < tc.exact || float64(got) > float64(tc.exact)*1.15 {
			t.Errorf("q%.2f: got %d, want within [%d, %.0f]", tc.q, got, tc.exact, float64(tc.exact)*1.15)
		}
	}
	if mean := s.Mean(); mean < 500 || mean > 501 {
		t.Errorf("mean %.2f, want 500.5", mean)
	}
}

func TestLocalHistFlush(t *testing.T) {
	var l LocalHist
	var h Histogram
	for v := int64(0); v < 100; v++ {
		l.Observe(v)
	}
	if l.Count() != 100 {
		t.Fatal("local count")
	}
	l.FlushTo(&h)
	if l.Count() != 0 {
		t.Fatal("flush must clear the local histogram")
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 99 || s.Sum != 4950 {
		t.Fatalf("flushed snapshot %+v", s)
	}
	// A second flush of an empty local must be a no-op.
	l.FlushTo(&h)
	if h.Count() != 100 {
		t.Fatal("empty flush changed the histogram")
	}
	// Flushing more data accumulates.
	l.Observe(1 << 30)
	l.FlushTo(&h)
	if got := h.Snapshot(); got.Count != 101 || got.Max != 1<<30 {
		t.Fatalf("second flush %+v", got)
	}
}

// TestHistogramConcurrent checks the shared histogram under concurrent
// observers (the sweep-worker case).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var l LocalHist
			for i := 0; i < perWorker; i++ {
				l.Observe(rng.Int63n(1 << 20))
				if i%1000 == 999 {
					l.FlushTo(&h)
				}
			}
			l.FlushTo(&h)
		}(int64(w))
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("lost observations: got %d want %d", got, want)
	}
}
