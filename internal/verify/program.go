package verify

import (
	"sort"

	"smartsouth/internal/openflow"
)

// CheckProgram statically checks a compiled Program before anything is
// installed on a switch: each switch program is materialized onto a
// transient model switch (cloning entries, so the program itself is not
// consumed) and run through the same verifier as live switches. This is
// the "verify before install" half of the paper's X3 claim — a service's
// whole configuration can be rejected while it is still just data.
//
// When opts.TagBytes is zero the program's own recorded tag budget is
// used, so tag-bound violations are caught without the caller having to
// thread the layout through.
func CheckProgram(p *openflow.Program, opts Options) []Issue {
	if opts.TagBytes == 0 {
		opts.TagBytes = p.TagBytes
	}
	var all []Issue
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		sw := openflow.NewSwitch(id, sp.NumPorts)
		sp.Materialize(sw)
		all = append(all, Switch(sw, opts)...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].Severity > all[j].Severity
	})
	return all
}
