package verify_test

import (
	"strings"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// TestAllServicesVerifyClean installs every SmartSouth service and runs
// the static checker over every switch: no Err-level findings allowed.
// This is the mechanized version of the paper's "the data plane remains
// formally verifiable" argument.
func TestAllServicesVerifyClean(t *testing.T) {
	g := topo.RandomConnected(10, 6, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)

	if _, err := core.InstallSnapshot(c, g, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallAnycast(c, g, 1, map[uint32][]int{1: {3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallPriocast(c, g, 2, map[uint32][]core.PrioMember{2: {{Node: 4, Prio: 5}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallCritical(c, g, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallBlackholeCounter(c, g, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallBlackholeTTL(c, g, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := core.InstallPktLoss(c, g, 7, nil); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < net.NumSwitches(); i++ {
		issues := verify.Switch(net.Switch(i), verify.Options{})
		if errs := verify.Errors(issues); len(errs) > 0 {
			for _, e := range errs {
				t.Errorf("%s", e)
			}
		}
	}
}

func TestVerifyDispatcherOverrideIsInfo(t *testing.T) {
	// The blackhole detectors deliberately override the template dispatcher
	// with an identical-match higher-priority rule steering into the
	// pre-table; the checker must surface that as an informational
	// override, not a shadow warning and not an error.
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := core.InstallBlackholeCounter(c, g, 0); err != nil {
		t.Fatal(err)
	}
	issues := verify.Switch(net.Switch(1), verify.Options{})
	foundOverride := false
	for _, i := range issues {
		if i.Severity == verify.Info && strings.Contains(i.Msg, "overridden") {
			foundOverride = true
		}
		if i.Severity == verify.Warn && strings.Contains(i.Msg, "shadowed") {
			t.Errorf("deliberate override misreported as shadow: %s", i)
		}
		if i.Severity == verify.Err {
			t.Errorf("unexpected error: %s", i)
		}
	}
	if !foundOverride {
		t.Error("expected an override note for the dispatcher override")
	}
}

func TestVerifyMultiSlotServiceNoShadowWarn(t *testing.T) {
	// Chaincast installs broad per-member exit rules above its own slot
	// rules — the multi-slot override idiom. Those must not surface as
	// shadow warnings.
	g := topo.Line(4)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := core.InstallChaincast(c, g, 0, [][]int{{0, 2}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumSwitches(); i++ {
		for _, is := range verify.Switch(net.Switch(i), verify.Options{}) {
			if is.Severity == verify.Warn && strings.Contains(is.Msg, "shadowed") {
				t.Errorf("sw%d: multi-slot override misreported as shadow: %s", i, is)
			}
			if is.Severity == verify.Err {
				t.Errorf("sw%d: unexpected error: %s", i, is)
			}
		}
	}
}

func TestVerifyDisjointMatchesNotShadowed(t *testing.T) {
	// Regression: two rules at descending priority with disjoint matches
	// on the same EtherType are independent — neither shadows nor
	// overrides the other.
	sw := brokenSwitch()
	f := openflow.Field{Name: "x", Off: 0, Bits: 4}
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 10, Match: openflow.MatchEth(5).WithField(f, 1),
		Goto: openflow.NoGoto, Cookie: "first"})
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 5, Match: openflow.MatchEth(5).WithField(f, 2),
		Goto: openflow.NoGoto, Cookie: "second"})
	for _, i := range verify.Switch(sw, verify.Options{}) {
		if strings.Contains(i.Msg, "shadowed") || strings.Contains(i.Msg, "overridden") {
			t.Errorf("disjoint rules flagged: %s", i)
		}
	}
}

func brokenSwitch() *openflow.Switch {
	return openflow.NewSwitch(0, 2)
}

func TestVerifyBackwardGoto(t *testing.T) {
	sw := brokenSwitch()
	sw.AddFlow(3, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: 1, Cookie: "bad"})
	sw.AddFlow(1, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: openflow.NoGoto, Cookie: "t1"})
	issues := verify.Errors(verify.Switch(sw, verify.Options{}))
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "backward goto") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestVerifyDanglingGotoAndGroup(t *testing.T) {
	sw := brokenSwitch()
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: 9,
		Actions: []openflow.Action{openflow.Group{ID: 42}}, Cookie: "dangling"})
	issues := verify.Switch(sw, verify.Options{})
	var gotoWarn, groupErr bool
	for _, i := range issues {
		if strings.Contains(i.Msg, "goto empty table") && i.Severity == verify.Warn {
			gotoWarn = true
		}
		if strings.Contains(i.Msg, "missing group") && i.Severity == verify.Err {
			groupErr = true
		}
	}
	if !gotoWarn || !groupErr {
		t.Fatalf("gotoWarn=%v groupErr=%v: %v", gotoWarn, groupErr, issues)
	}
}

func TestVerifyInvalidOutputs(t *testing.T) {
	sw := brokenSwitch()
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Output{Port: 7}}, Cookie: "badport"})
	sw.AddGroup(&openflow.GroupEntry{ID: 1, Type: openflow.GroupIndirect, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.Output{Port: 99}}},
	}})
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 2, Match: openflow.MatchEth(5),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Group{ID: 1}}, Cookie: "viagroup"})
	errs := verify.Errors(verify.Switch(sw, verify.Options{}))
	if len(errs) != 2 {
		t.Fatalf("want 2 errors (rule port + bucket port), got %v", errs)
	}
}

func TestVerifyGroupLoop(t *testing.T) {
	sw := brokenSwitch()
	sw.AddGroup(&openflow.GroupEntry{ID: 1, Type: openflow.GroupIndirect, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.Group{ID: 2}}},
	}})
	sw.AddGroup(&openflow.GroupEntry{ID: 2, Type: openflow.GroupIndirect, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.Group{ID: 1}}},
	}})
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Group{ID: 1}}, Cookie: "entry"})
	errs := verify.Errors(verify.Switch(sw, verify.Options{}))
	found := false
	for _, e := range errs {
		if strings.Contains(e.Msg, "loop") {
			found = true
		}
	}
	if !found {
		t.Fatalf("group loop not detected: %v", errs)
	}
}

func TestVerifyFFWithoutTerminalBucket(t *testing.T) {
	sw := brokenSwitch()
	sw.AddGroup(&openflow.GroupEntry{ID: 1, Type: openflow.GroupFF, Buckets: []openflow.Bucket{
		{WatchPort: 1, Actions: []openflow.Action{openflow.Output{Port: 1}}},
	}})
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Group{ID: 1}}, Cookie: "ff"})
	issues := verify.Switch(sw, verify.Options{})
	found := false
	for _, i := range issues {
		if i.Severity == verify.Warn && strings.Contains(i.Msg, "no unconditional bucket") {
			found = true
		}
	}
	if !found {
		t.Fatalf("FF liveness gap not flagged: %v", issues)
	}
}

func TestVerifyTagBounds(t *testing.T) {
	sw := brokenSwitch()
	big := openflow.Field{Name: "big", Off: 30, Bits: 8} // ends at bit 38 > 4 bytes
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1,
		Match: openflow.MatchAll().WithField(big, 1),
		Goto:  openflow.NoGoto,
		Actions: []openflow.Action{
			openflow.SetField{F: big, Value: 2},
			openflow.Output{Port: 1},
		}, Cookie: "oob"})
	errs := verify.Errors(verify.Switch(sw, verify.Options{TagBytes: 4}))
	if len(errs) != 2 {
		t.Fatalf("want 2 tag-bound errors (match + set), got %v", errs)
	}
	// Without a tag bound the same config is clean.
	if errs := verify.Errors(verify.Switch(sw, verify.Options{})); len(errs) != 0 {
		t.Fatalf("unbounded check should pass: %v", errs)
	}
}

func TestVerifyShadowingSemantics(t *testing.T) {
	sw := brokenSwitch()
	f := openflow.Field{Name: "x", Off: 0, Bits: 4}
	// hi is strictly more general and higher priority: it makes lo dead,
	// but constraining fewer dimensions is the deliberate-override shape,
	// so the finding is an Info override, not a shadow warning.
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 10, Match: openflow.MatchEth(5),
		Goto: openflow.NoGoto, Cookie: "hi"})
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 5, Match: openflow.MatchEth(5).WithField(f, 3),
		Goto: openflow.NoGoto, Cookie: "lo"})
	// unrelated does not shadow (different EthType).
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchEth(6),
		Goto: openflow.NoGoto, Cookie: "other"})
	issues := verify.Switch(sw, verify.Options{})
	overridden := map[string]bool{}
	for _, i := range issues {
		if strings.Contains(i.Msg, "shadowed") {
			t.Errorf("broader override misreported as shadow: %s", i)
		}
		if i.Severity == verify.Info && strings.Contains(i.Msg, "overridden") {
			overridden[i.Cookie] = true
		}
	}
	if !overridden["lo"] || overridden["other"] || overridden["hi"] {
		t.Fatalf("override set wrong: %v", overridden)
	}
	// Masked-field implication: hi pins the low 2 bits, lo pins all 4
	// with an agreeing value -> shadowed.
	sw2 := brokenSwitch()
	sw2.AddFlow(0, &openflow.FlowEntry{Priority: 10,
		Match: openflow.MatchAll().WithMasked(f, 0b11, 0b11), Goto: openflow.NoGoto, Cookie: "hi"})
	sw2.AddFlow(0, &openflow.FlowEntry{Priority: 5,
		Match: openflow.MatchAll().WithField(f, 0b0111), Goto: openflow.NoGoto, Cookie: "lo"})
	sw2.AddFlow(0, &openflow.FlowEntry{Priority: 4,
		Match: openflow.MatchAll().WithField(f, 0b0100), Goto: openflow.NoGoto, Cookie: "disagree"})
	issues = verify.Switch(sw2, verify.Options{})
	shadowed := map[string]bool{}
	for _, i := range issues {
		if strings.Contains(i.Msg, "shadowed") {
			shadowed[i.Cookie] = true
		}
	}
	if !shadowed["lo"] || shadowed["disagree"] {
		t.Fatalf("masked shadow set wrong: %v", shadowed)
	}
}
