// Package verify statically checks installed OpenFlow configurations.
//
// A central argument of the paper is that SmartSouth keeps the data plane
// formally verifiable: every behaviour is visible as ordinary flow and
// group entries, so properties can be checked without running packets.
// This package implements that check for the properties that would break
// the SmartSouth services: dangling or backward goto instructions,
// references to missing groups, group-chaining loops, invalid output
// ports, out-of-range tag fields, fast-failover groups that can strand a
// packet, and rules shadowed by higher-priority entries.
package verify

import (
	"fmt"
	"sort"

	"smartsouth/internal/openflow"
)

// Severity grades an issue.
type Severity int

const (
	// Info marks intentional-looking but noteworthy constructs.
	Info Severity = iota
	// Warn marks constructs that are suspicious but may be deliberate
	// (e.g. a fully shadowed rule — SmartSouth's dispatcher overrides do
	// this on purpose).
	Warn
	// Err marks configurations that will misbehave at packet time.
	Err
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Err:
		return "error"
	}
	return "?"
}

// MarshalText encodes the severity as its name, so JSON findings read
// "error" rather than an opaque integer.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes a severity name produced by MarshalText.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = Info
	case "warn":
		*s = Warn
	case "error":
		*s = Err
	default:
		return fmt.Errorf("unknown severity %q", b)
	}
	return nil
}

// Issue is one finding.
type Issue struct {
	Severity Severity
	Switch   int
	Table    int    // -1 when not table-related
	Cookie   string // offending rule, if any
	Msg      string
}

func (i Issue) String() string {
	where := fmt.Sprintf("sw%d", i.Switch)
	if i.Table >= 0 {
		where += fmt.Sprintf("/t%d", i.Table)
	}
	if i.Cookie != "" {
		where += "/" + i.Cookie
	}
	return fmt.Sprintf("[%s] %s: %s", i.Severity, where, i.Msg)
}

// Options tunes the checks.
type Options struct {
	// TagBytes, when > 0, bounds field references (matches and
	// set-fields) to the packet tag size.
	TagBytes int
	// MaxGroupDepth bounds group-chaining depth (default 8, matching the
	// pipeline model).
	MaxGroupDepth int
	// SkipShadowing disables the O(rules²) shadowing analysis.
	SkipShadowing bool
}

// Switch checks one switch and returns all findings, most severe first.
func Switch(sw *openflow.Switch, opts Options) []Issue {
	if opts.MaxGroupDepth == 0 {
		opts.MaxGroupDepth = 8
	}
	v := &verifier{sw: sw, opts: opts}
	v.tables()
	v.groups()
	if !opts.SkipShadowing {
		v.shadowing()
	}
	sort.SliceStable(v.issues, func(i, j int) bool {
		return v.issues[i].Severity > v.issues[j].Severity
	})
	return v.issues
}

// Errors filters issues of severity Err.
func Errors(issues []Issue) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Severity == Err {
			out = append(out, i)
		}
	}
	return out
}

type verifier struct {
	sw     *openflow.Switch
	opts   Options
	issues []Issue
}

func (v *verifier) add(sev Severity, table int, cookie, format string, args ...any) {
	v.issues = append(v.issues, Issue{
		Severity: sev, Switch: v.sw.ID, Table: table, Cookie: cookie,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (v *verifier) tables() {
	ids := v.sw.TableIDs()
	present := make(map[int]bool, len(ids))
	for _, id := range ids {
		present[id] = true
	}
	for _, id := range ids {
		st := v.sw.StateTableByID(id)
		if st != nil && st.Len() > 0 {
			// A state table claims its ID at execution time; flow entries
			// sharing it are unreachable.
			if t := v.sw.Table(id); t.Len() > 0 {
				v.add(Err, id, "", "table %d holds both %d flow entries and %d state transitions; the flow entries are unreachable", id, t.Len(), st.Len())
			}
			v.stateTable(id, st)
			continue
		}
		for _, e := range v.sw.Table(id).Entries() {
			if e.Goto != openflow.NoGoto {
				if e.Goto <= id {
					v.add(Err, id, e.Cookie, "backward goto %d", e.Goto)
				} else if !present[e.Goto] {
					v.add(Warn, id, e.Cookie, "goto empty table %d (packet will be dropped)", e.Goto)
				}
			}
			v.actions(id, e.Cookie, e.Actions)
			v.fields(id, e.Cookie, e.Match.Fields)
		}
	}
}

// stateTable checks one stateful stage: goto discipline, actions and
// field bounds of every transition, key-field bounds, and state-write
// reachability (a transition writing a state no entry can ever match is
// a likely encoding bug).
func (v *verifier) stateTable(id int, st *openflow.StateTable) {
	ids := v.sw.TableIDs()
	present := make(map[int]bool, len(ids))
	for _, tid := range ids {
		present[tid] = true
	}
	if v.opts.TagBytes > 0 {
		for _, kf := range st.Key {
			if kf.End() > v.opts.TagBytes*8 {
				v.add(Err, id, "", "state-table key field %s exceeds tag size %dB", kf, v.opts.TagBytes)
			}
		}
	}
	matchable := func(state uint64) bool {
		for _, e := range st.Entries() {
			if e.AnyState ||
				(e.StateMask != 0 && state&e.StateMask == e.State) ||
				(e.StateMask == 0 && state == e.State) {
				return true
			}
		}
		return false
	}
	for _, e := range st.Entries() {
		if e.Goto != openflow.NoGoto {
			if e.Goto <= id {
				v.add(Err, id, e.Cookie, "backward goto %d", e.Goto)
			} else if !present[e.Goto] {
				v.add(Warn, id, e.Cookie, "goto empty table %d (packet will be dropped)", e.Goto)
			}
		}
		v.actions(id, e.Cookie, e.Actions)
		v.fields(id, e.Cookie, e.Match.Fields)
		if e.SetState != nil && !matchable(*e.SetState) {
			v.add(Warn, id, e.Cookie, "writes state %d, which no transition of table %d matches", *e.SetState, id)
		}
	}
}

func (v *verifier) fields(table int, cookie string, fms []openflow.FieldMatch) {
	if v.opts.TagBytes <= 0 {
		return
	}
	for _, fm := range fms {
		if fm.F.End() > v.opts.TagBytes*8 {
			v.add(Err, table, cookie, "match field %s exceeds tag size %dB", fm.F, v.opts.TagBytes)
		}
	}
}

func (v *verifier) actions(table int, cookie string, acts []openflow.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case openflow.Output:
			p := act.Port
			valid := p == openflow.PortController || p == openflow.PortSelf ||
				p == openflow.PortInPort || p == openflow.PortDrop ||
				(p >= 1 && p <= v.sw.NumPorts)
			if !valid {
				v.add(Err, table, cookie, "output to invalid port %d (switch has %d ports)", p, v.sw.NumPorts)
			}
		case openflow.Group:
			if v.sw.GroupByID(act.ID) == nil {
				v.add(Err, table, cookie, "action references missing group %d", act.ID)
			}
		case openflow.SetField:
			if !act.F.Valid() {
				v.add(Err, table, cookie, "set-field with invalid field %s", act.F)
			} else if v.opts.TagBytes > 0 && act.F.End() > v.opts.TagBytes*8 {
				v.add(Err, table, cookie, "set-field %s exceeds tag size %dB", act.F, v.opts.TagBytes)
			}
		}
	}
}

// groups checks group references, chaining depth/loops and FF liveness
// coverage.
func (v *verifier) groups() {
	// Collect installed group IDs by probing bucket actions for chains.
	// (The switch API has no group iterator by design; probe the ID space
	// referenced from rules and buckets.)
	seen := map[uint32]*openflow.GroupEntry{}
	var queue []uint32
	enqueue := func(id uint32) {
		if _, ok := seen[id]; ok {
			return
		}
		if g := v.sw.GroupByID(id); g != nil {
			seen[id] = g
			queue = append(queue, id)
		}
	}
	for _, id := range v.sw.TableIDs() {
		for _, e := range v.sw.Table(id).Entries() {
			for _, a := range e.Actions {
				if ga, ok := a.(openflow.Group); ok {
					enqueue(ga.ID)
				}
			}
		}
		if st := v.sw.StateTableByID(id); st != nil {
			for _, e := range st.Entries() {
				for _, a := range e.Actions {
					if ga, ok := a.(openflow.Group); ok {
						enqueue(ga.ID)
					}
				}
			}
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		g := seen[id]
		if len(g.Buckets) == 0 {
			v.add(Warn, -1, "", "group %d has no buckets (packets handed to it vanish)", id)
		}
		hasLive := false
		for bi, b := range g.Buckets {
			if b.WatchPort == openflow.WatchNone {
				hasLive = true
			} else if b.WatchPort < 1 || b.WatchPort > v.sw.NumPorts {
				v.add(Err, -1, "", "group %d bucket %d watches invalid port %d", id, bi, b.WatchPort)
			}
			for _, a := range b.Actions {
				switch act := a.(type) {
				case openflow.Group:
					if v.sw.GroupByID(act.ID) == nil {
						v.add(Err, -1, "", "group %d bucket %d references missing group %d", id, bi, act.ID)
					} else {
						enqueue(act.ID)
					}
				case openflow.Output:
					p := act.Port
					valid := p == openflow.PortController || p == openflow.PortSelf ||
						p == openflow.PortInPort || p == openflow.PortDrop ||
						(p >= 1 && p <= v.sw.NumPorts)
					if !valid {
						v.add(Err, -1, "", "group %d bucket %d outputs to invalid port %d", id, bi, p)
					}
				}
			}
		}
		if g.Type == openflow.GroupFF && !hasLive && len(g.Buckets) > 0 {
			v.add(Warn, -1, "", "fast-failover group %d has no unconditional bucket: packets are dropped when all %d watched ports fail", id, len(g.Buckets))
		}
	}
	// Chain-depth / loop detection via DFS over the chain graph.
	state := map[uint32]int{} // 0 unvisited, 1 on stack, 2 done
	var walk func(id uint32, depth int)
	walk = func(id uint32, depth int) {
		if depth > v.opts.MaxGroupDepth {
			v.add(Err, -1, "", "group chain through %d exceeds depth %d", id, v.opts.MaxGroupDepth)
			return
		}
		if state[id] == 1 {
			v.add(Err, -1, "", "group chaining loop through group %d", id)
			return
		}
		if state[id] == 2 {
			return
		}
		state[id] = 1
		g := seen[id]
		for _, b := range g.Buckets {
			for _, a := range b.Actions {
				if ga, ok := a.(openflow.Group); ok {
					if _, known := seen[ga.ID]; known {
						walk(ga.ID, depth+1)
					}
				}
			}
		}
		state[id] = 2
	}
	for id := range seen {
		if state[id] == 0 {
			walk(id, 1)
		}
	}
}

// shadowing flags rules that can never match because a strictly
// higher-priority rule in the same table covers every packet they match.
// Coverage is decided on the full match map (openflow.Match.Covers), so
// two rules with disjoint matches never shadow each other regardless of
// priority. Coverage by an identical match map, or by a deliberately
// broader rule that constrains fewer dimensions, is the SmartSouth
// override idiom (dispatcher overrides, multi-slot service exit rules)
// and is reported at Info; coverage by a rule with the same footprint
// that merely accepts more values — the shape an accidental shadow
// takes — is a Warn. Each shadowed rule is reported once, against the
// highest-priority rule covering it.
func (v *verifier) shadowing() {
	for _, id := range v.sw.TableIDs() {
		entries := v.sw.Table(id).Entries() // sorted by priority desc
		for i, lo := range entries {
			for _, hi := range entries[:i] {
				if hi.Priority <= lo.Priority {
					continue
				}
				if !hi.Match.Covers(lo.Match) {
					continue
				}
				switch {
				case hi.Match.Equal(lo.Match):
					v.add(Info, id, lo.Cookie, "overridden by higher-priority rule %q (identical match)", hi.Cookie)
				case !hi.Match.SameFootprint(lo.Match):
					v.add(Info, id, lo.Cookie, "overridden by broader higher-priority rule %q", hi.Cookie)
				default:
					v.add(Warn, id, lo.Cookie, "shadowed by higher-priority rule %q", hi.Cookie)
				}
				break // one report per shadowed rule
			}
		}
	}
}
