package trace

import (
	"strings"
	"testing"

	"smartsouth/internal/openflow"
)

func exec(r *Recorder, seqSwitch int) {
	pkt := openflow.NewPacket(0x8802, 4)
	res := &openflow.Result{Matched: true}
	r.OnExec(0, seqSwitch, 1, pkt, res)
}

func TestRingRetainsTail(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		exec(r, i)
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("Events returned %d", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first tail)", i, e.Seq, want)
		}
		if e.Switch != 6+i {
			t.Fatalf("event %d switch %d", i, e.Switch)
		}
	}
}

func TestPartialRingOrder(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		exec(r, i)
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Seq != 0 || ev[2].Seq != 2 {
		t.Fatalf("partial ring events: %+v", ev)
	}
	if r.Dropped() != 0 {
		t.Fatal("nothing should be dropped below capacity")
	}
}

func TestDecoderFirstRegistrationWins(t *testing.T) {
	r := NewRecorder(8)
	f := openflow.Field{Name: "start", Off: 0, Bits: 2}
	r.RegisterService(0x8802, "snapshot", func(int) []openflow.Field { return []openflow.Field{f} })
	r.RegisterService(0x8802, "monitor", nil) // must not displace
	pkt := openflow.NewPacket(0x8802, 4)
	f.Store(pkt.Tag, 2)
	r.OnExec(5, 3, 2, pkt, &openflow.Result{Matched: true})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Service != "snapshot" {
		t.Fatalf("service label: %+v", ev)
	}
	if len(ev[0].Tags) != 1 || ev[0].Tags[0].Name != "start" || ev[0].Tags[0].Value != 2 {
		t.Fatalf("decoded tags: %+v", ev[0].Tags)
	}
}

func TestEventRecordsStepsBucketsEmissions(t *testing.T) {
	r := NewRecorder(8)
	pkt := openflow.NewPacket(0x8801, 2)
	res := &openflow.Result{
		Matched: true,
		Steps: []openflow.Step{{Table: 1, Priority: 9000, Cookie: "svc/x",
			Actions: []openflow.Action{openflow.Output{Port: 2}}}},
		GroupSteps: []openflow.GroupStep{{Group: 7, Type: openflow.GroupFF, Bucket: 1}},
		Emissions:  []openflow.Emission{{Port: 2, Pkt: pkt}},
	}
	r.OnExec(1000, 4, 3, pkt, res)
	e := r.Events()[0]
	if len(e.Rules) != 1 || e.Rules[0].Cookie != "svc/x" || e.Rules[0].Actions == "" {
		t.Fatalf("rules: %+v", e.Rules)
	}
	if len(e.Buckets) != 1 || e.Buckets[0].Group != 7 || e.Buckets[0].Bucket != 1 || e.Buckets[0].Type != "ff" {
		t.Fatalf("buckets: %+v", e.Buckets)
	}
	if len(e.Out) != 1 || e.Out[0] != 2 {
		t.Fatalf("out ports: %v", e.Out)
	}
	s := e.String()
	for _, want := range []string{"sw=4", "svc/x", "group 7 ff bucket 1", "out [2]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestResetKeepsDecoders(t *testing.T) {
	r := NewRecorder(4)
	r.RegisterService(0x8802, "snapshot", nil)
	exec(r, 0)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("reset must clear events")
	}
	exec(r, 1)
	if r.Events()[0].Service != "snapshot" {
		t.Fatal("decoders must survive reset")
	}
}
