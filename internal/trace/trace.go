// Package trace records per-packet hop traces of the simulated data
// plane: for every pipeline execution, which switch ran it, on which
// ingress port, which flow entries matched (table/priority/cookie), which
// group bucket was chosen, and the decoded SmartSouth tag fields
// (start/par/cur) of the packet as it arrived. Retention is a fixed-size
// ring buffer, so tracing a Ring(400)-scale traversal keeps the tail of
// the execution without unbounded memory.
//
// The recorder is fed by network.ObserveExec and is entirely passive: it
// never mutates packets or switches, and it is opt-in (WithTrace), so the
// untraced hot path stays allocation-free.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
)

// Rule is one matched flow entry in an event, with its actions rendered.
type Rule struct {
	Table    int    `json:"table"`
	Priority int    `json:"priority"`
	Cookie   string `json:"cookie"`
	Actions  string `json:"actions"`
}

// BucketChoice is one group-bucket decision in an event. Bucket -1 means
// the group dropped the packet (no live bucket, or not installed).
type BucketChoice struct {
	Group  uint32 `json:"group"`
	Type   string `json:"type"`
	Bucket int    `json:"bucket"`
}

// TagField is one decoded tag field of the packet as it arrived at the
// switch (pre-execution state); for SmartSouth services these are the
// traversal-phase field and the switch's own par/cur DFS state.
type TagField struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Event is one recorded pipeline execution.
type Event struct {
	// Seq is the global execution sequence number (0-based); with a full
	// ring, Events() returns the tail of the sequence.
	Seq uint64 `json:"seq"`
	// At is the simulation time of the execution.
	At network.Time `json:"at"`

	Switch  int    `json:"switch"`
	InPort  int    `json:"inPort"`
	Eth     uint16 `json:"eth"`
	Service string `json:"service,omitempty"`
	Matched bool   `json:"matched"`

	Rules   []Rule         `json:"rules,omitempty"`
	Buckets []BucketChoice `json:"buckets,omitempty"`
	Tags    []TagField     `json:"tags,omitempty"`
	// Out lists the emission ports (physical ports >= 1; the reserved
	// controller/self ports appear as their negative constants).
	Out []int `json:"out,omitempty"`
}

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t=%dns sw=%d in=%d eth=%#04x", e.Seq, int64(e.At), e.Switch, e.InPort, e.Eth)
	if e.Service != "" {
		fmt.Fprintf(&b, " svc=%s", e.Service)
	}
	for _, tf := range e.Tags {
		fmt.Fprintf(&b, " %s=%d", tf.Name, tf.Value)
	}
	if !e.Matched {
		b.WriteString(" MISS")
	}
	for _, r := range e.Rules {
		fmt.Fprintf(&b, " | t%d[%d] %s", r.Table, r.Priority, r.Cookie)
	}
	for _, g := range e.Buckets {
		if g.Bucket < 0 {
			fmt.Fprintf(&b, " | group %d %s: drop", g.Group, g.Type)
		} else {
			fmt.Fprintf(&b, " | group %d %s bucket %d", g.Group, g.Type, g.Bucket)
		}
	}
	if len(e.Out) > 0 {
		fmt.Fprintf(&b, " -> out %v", e.Out)
	}
	return b.String()
}

// FieldsFunc returns the tag fields to decode for a packet of a service
// at a given switch. For SmartSouth services this is typically
// {start, par[sw], cur[sw]} from the service's Layout.
type FieldsFunc func(sw int) []openflow.Field

type decoder struct {
	service string
	fields  FieldsFunc
}

// DefaultCapacity is the ring size used when WithTrace is given a
// non-positive capacity by the resolver.
const DefaultCapacity = 4096

// Recorder retains the last capacity pipeline executions in a ring
// buffer. It is safe for concurrent use (remote deployments feed it from
// the simulator goroutine while tests read it).
type Recorder struct {
	mu       sync.Mutex
	ring     []Event
	capacity int
	seq      uint64
	decoders map[uint16]decoder
}

// NewRecorder returns a recorder retaining the last capacity events
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:     make([]Event, 0, capacity),
		capacity: capacity,
		decoders: make(map[uint16]decoder),
	}
}

// RegisterService associates an EtherType with a service name and a tag
// decoder, so events of that EtherType carry decoded SmartSouth state.
// The first registration of an EtherType wins (a monitor's inner snapshot
// does not displace a standalone snapshot's decoder).
func (r *Recorder) RegisterService(eth uint16, service string, fields FieldsFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.decoders[eth]; !ok {
		r.decoders[eth] = decoder{service: service, fields: fields}
	}
}

// OnExec records one pipeline execution; wire it to network.ObserveExec.
// The packet's tag is decoded eagerly (the packet mutates as it travels).
func (r *Recorder) OnExec(at network.Time, sw, inPort int, pkt *openflow.Packet, res *openflow.Result) {
	e := Event{
		At: at, Switch: sw, InPort: inPort, Eth: pkt.EthType, Matched: res.Matched,
	}
	r.mu.Lock()
	d, haveDec := r.decoders[pkt.EthType]
	r.mu.Unlock()
	if haveDec {
		e.Service = d.service
		if d.fields != nil {
			for _, f := range d.fields(sw) {
				if f.Valid() {
					e.Tags = append(e.Tags, TagField{Name: f.Name, Value: pkt.Load(f)})
				}
			}
		}
	}
	for _, s := range res.Steps {
		e.Rules = append(e.Rules, Rule{
			Table: s.Table, Priority: s.Priority, Cookie: s.Cookie, Actions: actionsString(s.Actions),
		})
	}
	for _, g := range res.GroupSteps {
		e.Buckets = append(e.Buckets, BucketChoice{Group: g.Group, Type: g.Type.String(), Bucket: g.Bucket})
	}
	for _, em := range res.Emissions {
		e.Out = append(e.Out, em.Port)
	}

	r.mu.Lock()
	e.Seq = r.seq
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, e)
	} else {
		r.ring[int(r.seq)%r.capacity] = e
	}
	r.seq++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < r.capacity {
		return append([]Event(nil), r.ring...)
	}
	head := int(r.seq) % r.capacity
	out := make([]Event, 0, r.capacity)
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total returns the number of executions observed since creation (or the
// last Reset), including those evicted from the ring.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many events were evicted by the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.ring))
}

// Reset discards retained events and the sequence counter; registered
// decoders survive.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = r.ring[:0]
	r.seq = 0
}

func actionsString(acts []openflow.Action) string {
	if len(acts) == 0 {
		return ""
	}
	parts := make([]string, len(acts))
	for i, a := range acts {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
