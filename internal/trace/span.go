package trace

import (
	"sort"

	"smartsouth/internal/telemetry"
)

// SpanNode is one execution span in a reconstructed traversal tree,
// wrapping the raw record with its resolved children (ordered by
// simulation time, then record order — the merged span slice is already
// in that order, and reconstruction preserves it).
type SpanNode struct {
	Rec      telemetry.SpanRecord
	Children []*SpanNode
}

// TraceTree is one reconstructed traversal: every span sharing a trace
// id, linked parent→child. A healthy trace has exactly one root (the
// trigger's first execution, Parent == 0) and resolves every parent
// reference; spans whose parent record was evicted from a ring surface
// as extra roots and clear Complete, so a consumer can tell a full
// traversal from a tail.
type TraceTree struct {
	Trace     uint32
	Roots     []*SpanNode
	Spans     int  // total spans in the trace
	CrossLane int  // parent→child edges that cross a lane (shard) boundary
	Complete  bool // one root and every parent reference resolved
}

// BuildTraces reassembles merged span records (Network.SpanRecords) into
// per-traversal trees, returned in ascending trace-id order. Records
// with trace id 0 (untraced) are ignored.
func BuildTraces(recs []telemetry.SpanRecord) []*TraceTree {
	byTrace := make(map[uint32][]*SpanNode)
	for i := range recs {
		r := &recs[i]
		if r.Trace == 0 {
			continue
		}
		byTrace[r.Trace] = append(byTrace[r.Trace], &SpanNode{Rec: *r})
	}
	out := make([]*TraceTree, 0, len(byTrace))
	for id, nodes := range byTrace {
		t := &TraceTree{Trace: id, Spans: len(nodes), Complete: true}
		bySpan := make(map[uint64]*SpanNode, len(nodes))
		for _, n := range nodes {
			bySpan[n.Rec.Span] = n
		}
		for _, n := range nodes {
			p := n.Rec.Parent
			if p == 0 {
				t.Roots = append(t.Roots, n)
				continue
			}
			parent, ok := bySpan[p]
			if !ok {
				// The parent's record was evicted (ring wrap) or the
				// packet was injected mid-traversal: the node becomes an
				// orphan root and the trace is marked partial.
				t.Roots = append(t.Roots, n)
				t.Complete = false
				continue
			}
			parent.Children = append(parent.Children, n)
			if telemetry.SpanLane(p) != int(n.Rec.Lane) {
				t.CrossLane++
			}
		}
		if len(t.Roots) != 1 {
			t.Complete = false
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace < out[j].Trace })
	return out
}
