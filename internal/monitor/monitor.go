// Package monitor is the troubleshooting application the paper's
// introduction motivates: a controller-side daemon that composes the
// SmartSouth data-plane functions into a monitoring loop with minimal
// control-plane traffic.
//
// Each round costs O(1) out-of-band messages regardless of network size:
// one snapshot sweep (2 messages) is diffed against the previous round to
// emit topology events; when nodes or links disappear, a smart-counter
// blackhole round (3 messages) distinguishes silent failures from plain
// link-downs. Contrast with an out-of-band monitor, which needs O(E)
// probe messages per round and a control channel to every switch.
package monitor

import (
	"fmt"
	"sort"

	"smartsouth/internal/core"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
)

// EventKind classifies a topology change.
type EventKind int

const (
	// NodeLost: a switch present in the previous round is gone.
	NodeLost EventKind = iota
	// NodeRecovered: a switch reappeared.
	NodeRecovered
	// LinkLost: a link disappeared between rounds.
	LinkLost
	// LinkRecovered: a link reappeared.
	LinkRecovered
	// BlackholeFound: the watchdog located a silent failure.
	BlackholeFound
)

func (k EventKind) String() string {
	switch k {
	case NodeLost:
		return "node-lost"
	case NodeRecovered:
		return "node-recovered"
	case LinkLost:
		return "link-lost"
	case LinkRecovered:
		return "link-recovered"
	case BlackholeFound:
		return "blackhole-found"
	}
	return "?"
}

// Event is one detected change.
type Event struct {
	Kind  EventKind
	Round int
	// Node is set for node events; U/V for link events; Switch/Port for
	// blackhole reports.
	Node         int
	U, V         int
	Switch, Port int
}

func (e Event) String() string {
	switch e.Kind {
	case NodeLost, NodeRecovered:
		return fmt.Sprintf("round %d: %s %d", e.Round, e.Kind, e.Node)
	case LinkLost, LinkRecovered:
		return fmt.Sprintf("round %d: %s %d-%d", e.Round, e.Kind, e.U, e.V)
	default:
		return fmt.Sprintf("round %d: %s at switch %d port %d", e.Round, e.Kind, e.Switch, e.Port)
	}
}

// Monitor drives monitoring rounds over one network.
type Monitor struct {
	// Root is the switch the sweeps start from (the monitor needs
	// connectivity to this one switch only).
	Root int
	// Watchdog enables the blackhole round whenever the snapshot shrinks.
	Watchdog bool

	ctl   core.ControlPlane
	g     *topo.Graph
	snap  *core.Snapshot
	bh    *core.BlackholeCounter
	super core.Supervisor

	round int
	prev  *core.Result
	// Events accumulates everything detected so far.
	Events []Event
}

// New installs the monitoring services (two slots from slotBase; three
// when the watchdog is enabled). Install options — notably the compile
// backend — are passed through to both services.
func New(c core.ControlPlane, g *topo.Graph, slotBase, root int, watchdog bool, opts ...core.InstallOption) (*Monitor, error) {
	m := &Monitor{Root: root, Watchdog: watchdog, ctl: c, g: g}
	var err error
	if m.snap, err = core.InstallSnapshot(c, g, slotBase, opts...); err != nil {
		return nil, err
	}
	if watchdog {
		if m.bh, err = core.InstallBlackholeCounter(c, g, slotBase+1, opts...); err != nil {
			return nil, err
		}
	}
	return m, nil
}

type edgeKey struct{ a, b int }

func key(u, v int) edgeKey {
	if v < u {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// Round runs one monitoring round and returns the events it produced.
func (m *Monitor) Round() ([]Event, error) {
	m.round++
	telemetry.M.MonitorRounds.Inc()
	var events []Event
	defer func() { m.noteEvents(events) }()

	res, _, err := m.super.SnapshotWithRetry(m.snap, m.Root)
	if err != nil {
		// Every snapshot attempt was swallowed: a silent failure sits on
		// the sweep's own path. This is exactly the case the blackhole
		// watchdog exists for; without it the round fails.
		if !m.Watchdog || m.bh == nil {
			return nil, fmt.Errorf("monitor round %d: %w", m.round, err)
		}
		found, wErr := m.watchdogRound(&events)
		if wErr != nil {
			return events, wErr
		}
		if !found {
			return events, fmt.Errorf("monitor round %d: sweep lost and watchdog found nothing: %w", m.round, err)
		}
		m.Events = append(m.Events, events...)
		return events, nil
	}

	if m.prev != nil {
		events = append(events, m.diff(res)...)
	}
	shrunk := false
	for _, e := range events {
		if e.Kind == NodeLost || e.Kind == LinkLost {
			shrunk = true
		}
	}
	m.prev = res

	// Something disappeared: it may be a silent failure the snapshot's
	// fast-failover silently routed around. The watchdog's counter round
	// tells link-down (liveness already reflects it) apart from a
	// blackhole.
	if shrunk && m.Watchdog && m.bh != nil {
		if _, err := m.watchdogRound(&events); err != nil {
			return events, err
		}
	}

	m.Events = append(m.Events, events...)
	return events, nil
}

// watchdogRound runs one smart-counter blackhole detection and appends a
// BlackholeFound event when a silent failure is located.
func (m *Monitor) watchdogRound(events *[]Event) (found bool, err error) {
	telemetry.M.MonitorWatchdog.Inc()
	m.bh.ResetCounters()
	m.ctl.ClearInbox()
	m.bh.Detect(m.Root, m.ctl.Now()+1, 0)
	if _, err := m.ctl.RunNetwork(); err != nil {
		return false, err
	}
	if rep, ok, done := m.bh.Outcome(); done && ok {
		*events = append(*events, Event{
			Kind: BlackholeFound, Round: m.round,
			Switch: rep.Switch, Port: rep.Port, U: rep.Switch, V: rep.Peer,
		})
		return true, nil
	}
	return false, nil
}

// noteEvents publishes a round's event tally to the process telemetry.
func (m *Monitor) noteEvents(events []Event) {
	if len(events) == 0 {
		return
	}
	telemetry.M.MonitorEvents.Add(int64(len(events)))
	for _, e := range events {
		if e.Kind == BlackholeFound {
			telemetry.M.MonitorBlackholes.Inc()
		}
	}
}

// diff compares the new snapshot with the previous one.
func (m *Monitor) diff(cur *core.Result) []Event {
	var events []Event
	for n := range m.prev.Nodes {
		if !cur.Nodes[n] {
			events = append(events, Event{Kind: NodeLost, Round: m.round, Node: n})
		}
	}
	for n := range cur.Nodes {
		if !m.prev.Nodes[n] {
			events = append(events, Event{Kind: NodeRecovered, Round: m.round, Node: n})
		}
	}
	prevEdges := map[edgeKey]bool{}
	for _, e := range m.prev.Edges {
		prevEdges[key(e.U, e.V)] = true
	}
	curEdges := map[edgeKey]bool{}
	for _, e := range cur.Edges {
		curEdges[key(e.U, e.V)] = true
	}
	for k := range prevEdges {
		if !curEdges[k] {
			events = append(events, Event{Kind: LinkLost, Round: m.round, U: k.a, V: k.b})
		}
	}
	for k := range curEdges {
		if !prevEdges[k] {
			events = append(events, Event{Kind: LinkRecovered, Round: m.round, U: k.a, V: k.b})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return events
}

// Topology returns the latest snapshot (nil before the first round).
func (m *Monitor) Topology() *core.Result { return m.prev }

// OutBandPerRound reports the constant control-plane price of one round.
func (m *Monitor) OutBandPerRound() string {
	if m.Watchdog {
		return "2 (snapshot) + 3 (watchdog, only on shrink)"
	}
	return "2 (snapshot)"
}
