package monitor

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
)

func rig(t *testing.T, g *topo.Graph, watchdog bool) (*Monitor, *network.Network) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	m, err := New(c, g, 0, 0, watchdog)
	if err != nil {
		t.Fatal(err)
	}
	return m, net
}

func kinds(events []Event) map[EventKind]int {
	out := map[EventKind]int{}
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

func TestMonitorQuietNetworkNoEvents(t *testing.T) {
	g := topo.Grid(3, 4)
	m, _ := rig(t, g, false)
	for i := 0; i < 3; i++ {
		events, err := m.Round()
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Fatalf("round %d: spurious events %v", i, events)
		}
	}
	if topoRes := m.Topology(); topoRes == nil || len(topoRes.Edges) != g.NumEdges() {
		t.Error("topology view incomplete")
	}
}

func TestMonitorDetectsLinkFailAndRecovery(t *testing.T) {
	g := topo.Ring(8)
	m, net := rig(t, g, false)
	if _, err := m.Round(); err != nil { // baseline
		t.Fatal(err)
	}

	if err := net.SetLinkDown(3, 4, true); err != nil {
		t.Fatal(err)
	}
	events, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if k := kinds(events); k[LinkLost] != 1 || len(events) != 1 {
		t.Fatalf("events after failure: %v", events)
	}
	if events[0].U != 3 || events[0].V != 4 {
		t.Fatalf("wrong link: %v", events[0])
	}

	if err := net.SetLinkDown(3, 4, false); err != nil {
		t.Fatal(err)
	}
	events, err = m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if k := kinds(events); k[LinkRecovered] != 1 || len(events) != 1 {
		t.Fatalf("events after recovery: %v", events)
	}
}

func TestMonitorDetectsNodeLoss(t *testing.T) {
	// Cutting all links of node 5 makes it vanish from the snapshot.
	g := topo.Grid(3, 3)
	m, net := rig(t, g, false)
	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= g.Degree(5); p++ {
		v, _, _ := g.Neighbor(5, p)
		if err := net.SetLinkDown(5, v, true); err != nil {
			t.Fatal(err)
		}
	}
	events, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(events)
	if k[NodeLost] != 1 || k[LinkLost] != g.Degree(5) {
		t.Fatalf("events: %v", events)
	}
}

func TestMonitorWatchdogFindsBlackholeOffSweepPath(t *testing.T) {
	// A one-directional blackhole that the DFS only crosses on the echo
	// path: the link vanishes from the snapshot (its far side is reached
	// another way or not at all) or the sweep survives but shrinks — the
	// watchdog should name the silent failure.
	g := topo.Ring(6)
	m, net := rig(t, g, true)
	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetBlackhole(3, 2, false); err != nil { // against sweep direction
		t.Fatal(err)
	}
	events, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(events)
	if k[BlackholeFound] != 1 {
		t.Fatalf("watchdog missed the silent failure: %v", events)
	}
	for _, e := range events {
		if e.Kind == BlackholeFound {
			okFwd := e.U == 2 && e.V == 3
			okRev := e.U == 3 && e.V == 2
			if !okFwd && !okRev {
				t.Errorf("blackhole located at %d-%d, want 2-3", e.U, e.V)
			}
		}
	}
}

func TestMonitorWatchdogRescuesSwallowedSweep(t *testing.T) {
	// A forward blackhole right on the sweep path swallows every snapshot
	// retry; the watchdog must still localise it instead of erroring.
	g := topo.Line(5)
	m, net := rig(t, g, true)
	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetBlackhole(2, 3, false); err != nil {
		t.Fatal(err)
	}
	events, err := m.Round()
	if err != nil {
		t.Fatalf("round with watchdog should succeed: %v", err)
	}
	if kinds(events)[BlackholeFound] != 1 {
		t.Fatalf("events: %v", events)
	}
}

func TestMonitorWithoutWatchdogFailsOnSwallowedSweep(t *testing.T) {
	g := topo.Line(4)
	m, net := rig(t, g, false)
	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetBlackhole(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Round(); err == nil {
		t.Fatal("expected the round to fail without a watchdog")
	}
}

// TestMonitorTelemetryAndWatchdogCost pins the paper's message economics
// under the process telemetry: a quiet round costs exactly 2 out-of-band
// messages, and a blackhole round adds exactly the watchdog's 3 — all of
// it visible as telemetry counter deltas.
func TestMonitorTelemetryAndWatchdogCost(t *testing.T) {
	rounds0 := telemetry.M.MonitorRounds.Load()
	wd0 := telemetry.M.MonitorWatchdog.Load()
	bh0 := telemetry.M.MonitorBlackholes.Load()
	ev0 := telemetry.M.MonitorEvents.Load()

	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	m, err := New(c, g, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}

	c.ResetRuntimeStats()
	if _, err := m.Round(); err != nil { // baseline
		t.Fatal(err)
	}
	if got := c.Stats.RuntimeMsgs(); got != 2 {
		t.Fatalf("quiet round cost %d out-of-band messages, want 2", got)
	}

	// Silent failure on the sweep's echo path. The watchdog round itself
	// is the paper's 3 out-of-band messages, exactly: 2 packet-outs
	// (dance + delayed checker) and 1 packet-in (the verdict).
	if err := net.SetBlackhole(3, 2, false); err != nil {
		t.Fatal(err)
	}
	c.ResetRuntimeStats()
	var events []Event
	found, err := m.watchdogRound(&events)
	if err != nil {
		t.Fatal(err)
	}
	if !found || kinds(events)[BlackholeFound] != 1 {
		t.Fatalf("watchdog missed the blackhole: %v", events)
	}
	if c.Stats.PacketOuts != 2 || c.Stats.PacketIns != 1 {
		t.Fatalf("watchdog round cost %d packet-outs + %d packet-ins, want the paper's 2+1",
			c.Stats.PacketOuts, c.Stats.PacketIns)
	}
	m.noteEvents(events)

	if d := telemetry.M.MonitorRounds.Load() - rounds0; d != 1 {
		t.Errorf("MonitorRounds delta %d, want 1", d)
	}
	if d := telemetry.M.MonitorWatchdog.Load() - wd0; d != 1 {
		t.Errorf("MonitorWatchdog delta %d, want 1", d)
	}
	if d := telemetry.M.MonitorBlackholes.Load() - bh0; d != 1 {
		t.Errorf("MonitorBlackholes delta %d, want 1", d)
	}
	if d := telemetry.M.MonitorEvents.Load() - ev0; d != int64(len(events)) {
		t.Errorf("MonitorEvents delta %d, want %d", d, len(events))
	}
}

func TestMonitorControlPlaneCostStaysConstant(t *testing.T) {
	g := topo.RandomConnected(40, 25, 9)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	m, err := New(c, g, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	c.ResetRuntimeStats()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, err := m.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats.RuntimeMsgs(); got != 2*rounds {
		t.Errorf("out-band msgs = %d over %d rounds, want %d", got, rounds, 2*rounds)
	}
}
