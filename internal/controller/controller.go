// Package controller models the SDN control plane: an out-of-band channel
// to every switch for flow-mod/group-mod installation (the SmartSouth
// offline stage), packet-out injection and packet-in reception (the
// runtime stage), plus the controller-centric baseline applications the
// paper argues against (out-of-band topology discovery, reactive
// forwarding, per-link probing).
//
// All control-channel traffic is counted so experiments can fill the
// "out-band #msgs / size" columns of Table 2 and the control-load
// comparison of claim C4.
package controller

import (
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
)

// PacketIn is one packet a switch punted to the controller.
type PacketIn struct {
	Switch int
	Pkt    *openflow.Packet
	At     network.Time
}

// Stats counts control-channel traffic. FlowMods/GroupMods belong to the
// offline stage and are reported separately from the runtime PacketOut /
// PacketIn messages that Table 2 calls "out-band" messages.
type Stats struct {
	FlowMods   int
	GroupMods  int
	PacketOuts int
	PacketIns  int
	// OutBandBytes sums the payload size of runtime messages only.
	OutBandBytes int
	// InstallMsgs counts the control-channel messages the offline stage
	// actually used: one per flow-mod/group-mod on the per-rule path, one
	// per batch on the program path. FlowMods/GroupMods stay logical rule
	// counts, so batching shows up as InstallMsgs << FlowMods+GroupMods.
	InstallMsgs int
}

// RuntimeMsgs is the Table-2 "out-band #msgs" figure: packet-outs plus
// packet-ins.
func (s Stats) RuntimeMsgs() int { return s.PacketOuts + s.PacketIns }

// Controller is attached to a network and owns its OnPacketIn hook.
// Create it before installing services so packet-ins are not lost.
type Controller struct {
	Net   *network.Network
	Stats Stats

	inbox    []PacketIn
	programs []*openflow.Program
	// OnPacketIn, if set, observes every packet-in as it arrives (the
	// inbox is appended regardless).
	OnPacketIn func(PacketIn)
}

// New attaches a controller to the network.
func New(net *network.Network) *Controller {
	c := &Controller{Net: net}
	net.OnPacketIn = func(sw int, pkt *openflow.Packet) {
		c.Stats.PacketIns++
		c.Stats.OutBandBytes += pkt.Size()
		pi := PacketIn{Switch: sw, Pkt: pkt, At: net.Sim.Now()}
		c.inbox = append(c.inbox, pi)
		if c.OnPacketIn != nil {
			c.OnPacketIn(pi)
		}
	}
	return c
}

// Inbox returns all packet-ins received so far.
func (c *Controller) Inbox() []PacketIn { return c.inbox }

// ClearInbox empties the inbox and returns the packets to the packet
// pool (accounting is untouched). Inbox packets are owned by the
// controller: consumers decode them in place — decoding copies what it
// keeps — so by the time the inbox is cleared no live reference remains,
// and recycling here is what keeps a steady monitoring loop (trigger,
// run, collect, reset) from leaking one full-trace report packet per
// sweep.
func (c *Controller) ClearInbox() {
	for _, pi := range c.inbox {
		pi.Pkt.Release()
	}
	c.inbox = c.inbox[:0]
}

// InstallProgram applies a compiled program, batched per switch: entries
// and groups are cloned onto each switch (a program is a reusable compile
// artifact), the switch's dispatch matcher is recompiled — install is the
// one seam both backends' lowerings pass through, so compiled dispatch
// needs no per-mutator invalidation — and the program is retained for
// declarative accounting (rule-space figures are read off installed
// programs, not live switches). On a sharded network the materialization
// and dispatch compilation run concurrently across shards (each touches
// only its target switch); accounting stays serial.
func (c *Controller) InstallProgram(p *openflow.Program) {
	ids := p.SwitchIDs()
	for _, id := range ids {
		sp := p.At(id)
		c.Stats.FlowMods += len(sp.Flows)
		c.Stats.GroupMods += len(sp.Groups)
		c.Stats.InstallMsgs++ // one batched transaction per switch
	}
	c.Net.InstallBatch(ids, func(id int) {
		sw := c.Net.Switch(id)
		p.At(id).Materialize(sw)
		sw.CompileDispatch()
	})
	if !p.Transient {
		c.programs = append(c.programs, p)
	}
}

// Programs returns every program installed so far, in install order.
func (c *Controller) Programs() []*openflow.Program {
	return append([]*openflow.Program(nil), c.programs...)
}

// DropPrograms forgets installed programs covering the given slot; the
// deployment layer calls it when it uninstalls a service. The switches'
// state is not touched here — rule removal stays with the caller.
func (c *Controller) DropPrograms(slot int) {
	kept := c.programs[:0]
	for _, p := range c.programs {
		if !p.CoversSlot(slot) {
			kept = append(kept, p)
		}
	}
	c.programs = kept
}

// InstallFlow sends a flow-mod (offline stage, per-rule path used by the
// controller-centric baseline applications; InstallProgram is the batched
// path SmartSouth services use).
func (c *Controller) InstallFlow(sw, table int, e *openflow.FlowEntry) {
	c.Stats.FlowMods++
	c.Stats.InstallMsgs++
	c.Net.Switch(sw).AddFlow(table, e)
}

// InstallGroup sends a group-mod (offline stage).
func (c *Controller) InstallGroup(sw int, g *openflow.GroupEntry) {
	c.Stats.GroupMods++
	c.Stats.InstallMsgs++
	c.Net.Switch(sw).AddGroup(g)
}

// ResetState clears the state stores of the given state tables on every
// switch — one batched state-mod transaction per switch that has any of
// them, counted like an install message.
func (c *Controller) ResetState(tables ...int) {
	for id := 0; id < c.Net.NumSwitches(); id++ {
		sw := c.Net.Switch(id)
		touched := false
		for _, t := range tables {
			if st := sw.StateTableByID(t); st != nil && st.Len() > 0 {
				sw.ResetStateTable(t)
				touched = true
			}
		}
		if touched {
			c.Stats.InstallMsgs++
		}
	}
}

// ReadState reads one flow key's state from a state table on switch sw,
// as a state-stats request (counted as a runtime message pair).
func (c *Controller) ReadState(sw, table int, key uint64) (uint64, bool) {
	v, ok := c.Net.Switch(sw).StateValue(table, key)
	if ok {
		c.Stats.PacketOuts++ // request
		c.Stats.PacketIns++  // reply
	}
	return v, ok
}

// PacketOut injects a packet at a switch for pipeline processing, as if it
// had arrived on inPort (use openflow.PortController for "no port").
func (c *Controller) PacketOut(sw, inPort int, pkt *openflow.Packet, at network.Time) {
	c.Stats.PacketOuts++
	c.Stats.OutBandBytes += pkt.Size()
	c.Net.Inject(sw, inPort, pkt, at)
}

// PacketOutActions injects a packet with an explicit action list,
// bypassing the tables (how LLDP probes are sent in practice).
func (c *Controller) PacketOutActions(sw int, actions []openflow.Action, pkt *openflow.Packet, at network.Time) {
	c.Stats.PacketOuts++
	c.Stats.OutBandBytes += pkt.Size()
	c.Net.InjectActions(sw, actions, pkt, at)
}

// InjectHost injects in-band host traffic at a switch — ordinary data
// plane input, not a controller message, so it is not counted.
func (c *Controller) InjectHost(sw int, pkt *openflow.Packet, at network.Time) {
	c.Net.Inject(sw, openflow.PortController, pkt, at)
}

// RunNetwork drains the simulator's event queue.
func (c *Controller) RunNetwork() (int, error) { return c.Net.Run() }

// Now returns the current network time.
func (c *Controller) Now() network.Time { return c.Net.Sim.Now() }

// PortLive reports the liveness of a switch port, as the controller would
// know it from port-status messages.
func (c *Controller) PortLive(sw, port int) bool { return c.Net.Switch(sw).PortLive(port) }

// GroupCounter reads a group's round-robin pointer for diagnostics.
func (c *Controller) GroupCounter(sw int, id uint32) int {
	g := c.Net.Switch(sw).GroupByID(id)
	if g == nil {
		return -1
	}
	return g.CounterValue()
}

// ResetRuntimeStats zeroes the runtime counters, keeping the offline
// flow-mod/group-mod tally, so a measurement can isolate one request.
func (c *Controller) ResetRuntimeStats() {
	c.Stats.PacketOuts = 0
	c.Stats.PacketIns = 0
	c.Stats.OutBandBytes = 0
	c.ClearInbox()
}
