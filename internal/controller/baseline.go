package controller

import (
	"encoding/binary"
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EtherTypes used by the baseline controller applications.
const (
	// EthLLDP marks out-of-band discovery probes (the real LLDP type).
	EthLLDP = 0x88CC
	// EthProbe marks per-link blackhole probes.
	EthProbe = 0x88B6
	// EthData marks host data packets used by the reactive baseline.
	EthData = 0x0800
)

// fDataFlow is the flow identifier field reactive forwarding matches on;
// data packets carry a 4-byte tag holding it.
var fDataFlow = openflow.Field{Name: "flow", Off: 0, Bits: 32}

// InstallPuntRules installs, on every switch, a rule punting the given
// EtherType to the controller. Out-of-band discovery requires a working
// control channel to *every* switch — exactly the assumption SmartSouth
// drops — so this is part of every baseline's setup.
func (c *Controller) InstallPuntRules(ethType uint16, priority int) {
	for sw := 0; sw < c.Net.NumSwitches(); sw++ {
		c.InstallFlow(sw, 0, &openflow.FlowEntry{
			Priority: priority,
			Match:    openflow.MatchEth(ethType),
			Actions:  []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Goto:     openflow.NoGoto,
			Cookie:   fmt.Sprintf("punt-%#04x", ethType),
		})
	}
}

func encodeProbe(sw, port int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:4], uint32(sw))
	binary.BigEndian.PutUint32(b[4:8], uint32(port))
	return b
}

func decodeProbe(b []byte) (sw, port int, ok bool) {
	if len(b) < 8 {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(b[0:4])), int(binary.BigEndian.Uint32(b[4:8])), true
}

// DiscoverTopology is the out-of-band baseline the snapshot service
// competes with (the paper cites Floodlight's TopologyService): the
// controller sends one LLDP probe out of every port of every switch and
// pairs the resulting packet-ins into links. It returns the discovered
// edges. Cost: 2E packet-outs + up to 2E packet-ins, and it silently
// misses everything behind a switch whose control channel is down —
// whereas the in-band snapshot only needs to reach one switch.
//
// The caller must have run InstallPuntRules(EthLLDP, …) and should measure
// via Stats deltas around the call + Net.Run().
func (c *Controller) DiscoverTopology(start network.Time) *TopologyCollector {
	tc := &TopologyCollector{seen: make(map[[2]int]topo.Edge)}
	prev := c.OnPacketIn
	c.OnPacketIn = func(pi PacketIn) {
		if prev != nil {
			prev(pi)
		}
		if pi.Pkt.EthType != EthLLDP {
			return
		}
		u, p, ok := decodeProbe(pi.Pkt.Payload)
		if !ok {
			return
		}
		tc.add(topo.Edge{U: u, PU: p, V: pi.Switch, PV: pi.Pkt.InPort})
	}
	for sw := 0; sw < c.Net.NumSwitches(); sw++ {
		for p := 1; p <= c.Net.Switch(sw).NumPorts; p++ {
			pkt := openflow.NewPacket(EthLLDP, 0)
			pkt.Payload = encodeProbe(sw, p)
			c.PacketOutActions(sw, []openflow.Action{openflow.Output{Port: p}}, pkt, start)
		}
	}
	return tc
}

// TopologyCollector accumulates discovered edges.
type TopologyCollector struct {
	seen map[[2]int]topo.Edge
}

func (tc *TopologyCollector) add(e topo.Edge) {
	key := [2]int{e.U, e.V}
	if e.V < e.U {
		key = [2]int{e.V, e.U}
	}
	if _, dup := tc.seen[key]; !dup {
		tc.seen[key] = e
	}
}

// Edges returns the discovered links.
func (tc *TopologyCollector) Edges() []topo.Edge {
	out := make([]topo.Edge, 0, len(tc.seen))
	for _, e := range tc.seen {
		out = append(out, e)
	}
	return out
}

// ProbeLinks is the controller-driven blackhole baseline: one probe per
// directed link; directions whose probe never returns are suspects.
// Cost: 2E packet-outs + up to 2E packet-ins per detection round, against
// the smart-counter service's 3 out-of-band messages.
func (c *Controller) ProbeLinks(start network.Time) *ProbeCollector {
	pc := &ProbeCollector{expected: make(map[[2]int]bool)}
	prev := c.OnPacketIn
	c.OnPacketIn = func(pi PacketIn) {
		if prev != nil {
			prev(pi)
		}
		if pi.Pkt.EthType != EthProbe {
			return
		}
		if u, p, ok := decodeProbe(pi.Pkt.Payload); ok {
			delete(pc.expected, [2]int{u, p})
		}
	}
	for sw := 0; sw < c.Net.NumSwitches(); sw++ {
		for p := 1; p <= c.Net.Switch(sw).NumPorts; p++ {
			pc.expected[[2]int{sw, p}] = true
			pkt := openflow.NewPacket(EthProbe, 0)
			pkt.Payload = encodeProbe(sw, p)
			c.PacketOutActions(sw, []openflow.Action{openflow.Output{Port: p}}, pkt, start)
		}
	}
	return pc
}

// ProbeCollector tracks outstanding probes; after the network has run,
// Missing lists the directed ports whose probes vanished.
type ProbeCollector struct {
	expected map[[2]int]bool
}

// Missing returns (switch, port) pairs whose probe never came back.
func (pc *ProbeCollector) Missing() [][2]int {
	var out [][2]int
	for k := range pc.expected {
		out = append(out, k)
	}
	return out
}

// ReactiveAnycast is the controller-centric alternative to the in-band
// anycast service: the ingress switch punts the first packet of a flow,
// the controller computes a shortest path to the nearest reachable group
// member over its (assumed fresh) topology view, installs one flow-mod per
// path hop, and packet-outs the packet. Returns the chosen member and the
// path length, or ok=false when no member is reachable.
//
// Cost per new flow: 1 packet-in + |path| flow-mods + 1 packet-out — all
// of which SmartSouth's anycast avoids.
func (c *Controller) ReactiveAnycast(g *topo.Graph, src int, members []int, flowID uint32, at network.Time) (member int, hops int, ok bool) {
	// The punt that starts a reactive flow: modelled directly as one
	// packet-in worth of accounting.
	c.Stats.PacketIns++

	best, bestLen := -1, -1
	var bestPath []int // node sequence src..member
	for _, m := range members {
		path := bfsPath(g, src, m)
		if path == nil {
			continue
		}
		if bestLen == -1 || len(path) < bestLen {
			best, bestLen, bestPath = m, len(path), path
		}
	}
	if best == -1 {
		return 0, 0, false
	}

	pkt := openflow.NewPacket(EthData, 4)
	pkt.Store(fDataFlow, uint64(flowID))
	match := openflow.MatchEth(EthData).WithField(fDataFlow, uint64(flowID))
	for i := 0; i < len(bestPath)-1; i++ {
		u, v := bestPath[i], bestPath[i+1]
		c.InstallFlow(u, 0, &openflow.FlowEntry{
			Priority: 50, Match: match, Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: g.PortTo(u, v)}},
			Cookie:  fmt.Sprintf("reactive-flow-%d", flowID),
		})
	}
	c.InstallFlow(best, 0, &openflow.FlowEntry{
		Priority: 50, Match: match, Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
		Cookie:  fmt.Sprintf("reactive-flow-%d-sink", flowID),
	})
	c.PacketOut(src, openflow.PortController, pkt, at)
	return best, len(bestPath) - 1, true
}

// bfsPath returns the node sequence of a shortest path src..dst, or nil.
func bfsPath(g *topo.Graph, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := map[int]int{src: -1}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 1; p <= g.Degree(u); p++ {
			v, _, _ := g.Neighbor(u, p)
			if _, seen := prev[v]; seen {
				continue
			}
			prev[v] = u
			if v == dst {
				var path []int
				for x := dst; x != -1; x = prev[x] {
					path = append(path, x)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}
