package controller

import (
	"testing"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

func TestInstallAndPacketOutAccounting(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := New(net)

	c.InstallFlow(0, 0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}}, Cookie: "punt"})
	c.InstallGroup(1, &openflow.GroupEntry{ID: 1, Type: openflow.GroupIndirect})
	if c.Stats.FlowMods != 1 || c.Stats.GroupMods != 1 {
		t.Errorf("offline stats: %+v", c.Stats)
	}

	c.PacketOut(0, 1, openflow.NewPacket(0x1234, 0), 0)
	net.Run()
	if c.Stats.PacketOuts != 1 || c.Stats.PacketIns != 1 {
		t.Errorf("runtime stats: %+v", c.Stats)
	}
	if len(c.Inbox()) != 1 || c.Inbox()[0].Switch != 0 {
		t.Errorf("inbox: %+v", c.Inbox())
	}
	if c.Stats.RuntimeMsgs() != 2 || c.Stats.OutBandBytes == 0 {
		t.Errorf("runtime msgs: %+v", c.Stats)
	}
	c.ResetRuntimeStats()
	if c.Stats.RuntimeMsgs() != 0 || c.Stats.FlowMods != 1 || len(c.Inbox()) != 0 {
		t.Errorf("after reset: %+v", c.Stats)
	}
}

func edgeKey(e topo.Edge) [2]int {
	if e.U < e.V {
		return [2]int{e.U, e.V}
	}
	return [2]int{e.V, e.U}
}

func TestDiscoverTopologyFindsEveryLink(t *testing.T) {
	g := topo.RandomConnected(12, 6, 5)
	net := network.New(g, network.Options{})
	c := New(net)
	c.InstallPuntRules(EthLLDP, 100)

	tc := c.DiscoverTopology(0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}

	got := make(map[[2]int]bool)
	for _, e := range tc.Edges() {
		got[edgeKey(e)] = true
	}
	if len(got) != g.NumEdges() {
		t.Fatalf("discovered %d links, want %d", len(got), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !got[edgeKey(e)] {
			t.Errorf("missed edge %+v", e)
		}
	}
	// Cost model: 2E probes out, 2E packet-ins back.
	if c.Stats.PacketOuts != 2*g.NumEdges() {
		t.Errorf("packet-outs = %d, want %d", c.Stats.PacketOuts, 2*g.NumEdges())
	}
	if c.Stats.PacketIns != 2*g.NumEdges() {
		t.Errorf("packet-ins = %d, want %d", c.Stats.PacketIns, 2*g.NumEdges())
	}
}

func TestDiscoverTopologyMissesFailedLink(t *testing.T) {
	g := topo.Ring(5)
	net := network.New(g, network.Options{})
	c := New(net)
	c.InstallPuntRules(EthLLDP, 100)
	net.SetLinkDown(1, 2, true)

	tc := c.DiscoverTopology(0)
	net.Run()
	for _, e := range tc.Edges() {
		k := edgeKey(e)
		if k == [2]int{1, 2} {
			t.Error("down link must not be discovered")
		}
	}
	if len(tc.Edges()) != 4 {
		t.Errorf("discovered %d links, want 4", len(tc.Edges()))
	}
}

func TestProbeLinksLocatesBlackhole(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := New(net)
	c.InstallPuntRules(EthProbe, 100)
	// Unidirectional blackhole 4 -> 5.
	if err := net.SetBlackhole(4, 5, false); err != nil {
		t.Fatal(err)
	}

	pc := c.ProbeLinks(0)
	net.Run()
	missing := pc.Missing()
	if len(missing) != 1 {
		t.Fatalf("missing = %v, want exactly one", missing)
	}
	wantPort := g.PortTo(4, 5)
	if missing[0] != [2]int{4, wantPort} {
		t.Errorf("located %v, want [4 %d]", missing[0], wantPort)
	}
}

func TestReactiveAnycastInstallsPathAndDelivers(t *testing.T) {
	g := topo.Line(6)
	net := network.New(g, network.Options{})
	c := New(net)

	delivered := []int{}
	net.OnSelf = func(sw int, pkt *openflow.Packet) { delivered = append(delivered, sw) }

	member, hops, ok := c.ReactiveAnycast(g, 1, []int{4, 5}, 77, 0)
	if !ok || member != 4 || hops != 3 {
		t.Fatalf("member=%d hops=%d ok=%v, want 4/3/true", member, hops, ok)
	}
	net.Run()
	if len(delivered) != 1 || delivered[0] != 4 {
		t.Fatalf("delivered to %v, want [4]", delivered)
	}
	// 1 punt (modelled) + 1 packet-out; flow-mods = hops rules + sink.
	if c.Stats.PacketIns != 1 || c.Stats.PacketOuts != 1 {
		t.Errorf("runtime: %+v", c.Stats)
	}
	if c.Stats.FlowMods != hops+1 {
		t.Errorf("flow-mods = %d, want %d", c.Stats.FlowMods, hops+1)
	}
}

func TestReactiveAnycastNoMemberReachable(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := New(net)
	_, _, ok := c.ReactiveAnycast(g, 0, nil, 1, 0)
	if ok {
		t.Error("no members: want ok=false")
	}
}

func TestBFSPathProperties(t *testing.T) {
	g := topo.Grid(4, 4)
	path := bfsPath(g, 0, 15)
	if len(path) != 7 { // manhattan distance 6 => 7 nodes
		t.Fatalf("path len %d, want 7", len(path))
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path step %d not an edge", i)
		}
	}
	if bfsPath(g, 3, 3)[0] != 3 {
		t.Error("self path")
	}
}
