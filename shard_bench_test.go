package smartsouth

import (
	"fmt"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// BenchmarkShardedSnapshot is the shard-count scaling curve: a fat-tree
// k=16 under a burst of concurrent splitting-snapshot traversals, swept
// across shard counts. The OF13 lowering carries all DFS state in the
// packet tag, so the traversals are mutually independent and the burst
// genuinely parallelizes across shard workers — one traversal alone is a
// serial packet walk no amount of sharding can speed up.
//
// The bench drives internal/network + controller + core directly rather
// than the facade: Deploy wires hop observers for the metrics registry,
// and observer fan-out is serialized across worker lanes (obsMu), which
// would measure lock contention instead of the engine. Wall-clock
// speedup at 8 shards requires GOMAXPROCS >= 8; on fewer cores the same
// rows measure the sharding overhead instead, which cmd/benchguard
// gates via the shards ratio in BENCH_pr8.json.
//
// Each iteration also samples the Table-2 invariant: a burst of T
// traversals must stay within T times the 4|E| per-sweep message bound.
func BenchmarkShardedSnapshot(b *testing.B) {
	g, err := topo.FatTree(16)
	if err != nil {
		b.Fatal(err)
	}
	const triggers = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			net := network.New(g, network.Options{Shards: shards})
			c := controller.New(net)
			s, err := core.InstallSnapshotSplit(c, g, 0, 16)
			if err != nil {
				b.Fatal(err)
			}
			bound := triggers * 4 * g.NumEdges()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ResetRuntimeStats()
				net.ResetAccounting()
				base := net.Sim.Now()
				for t := 0; t < triggers; t++ {
					s.Trigger((t*37)%g.NumNodes(), base+network.Time(t)*50)
				}
				if _, err := net.Run(); err != nil {
					b.Fatal(err)
				}
				if msgs := net.InBandCount(core.EthSnapSplit); msgs == 0 || msgs > bound {
					b.Fatalf("burst of %d sweeps used %d in-band msgs, bound %d", triggers, msgs, bound)
				}
			}
			b.ReportMetric(float64(g.NumNodes()), "switches")
			b.ReportMetric(float64(triggers), "sweeps/op")
		})
	}
}
