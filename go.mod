module smartsouth

go 1.22
