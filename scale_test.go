package smartsouth

import (
	"testing"

	"smartsouth/internal/topo"
)

// TestScaleFewHundredNodes exercises the paper's headline scalability
// claim end to end: on a ~300-switch network, install snapshot, critical
// and smart-counter blackhole detection simultaneously, run all three,
// and check the per-switch state and tag budgets.
func TestScaleFewHundredNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 300
	g := RandomConnected(n, n/2, 77)
	d := Deploy(g, Options{})

	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	crit, err := d.InstallCritical()
	if err != nil {
		t.Fatal(err)
	}
	bh, err := d.InstallBlackholeCounter()
	if err != nil {
		t.Fatal(err)
	}

	// Budgets: per-switch rule state within the NoviKit's 32 MB; DFS tag
	// within the paper's 0.5 KB data section.
	if perSwitch := d.ConfigBytes() / n; perSwitch > 32*1024*1024 {
		t.Fatalf("per-switch config %dB exceeds 32MB", perSwitch)
	}
	if tag := snap.L.TagBytes(); tag > 512 {
		t.Errorf("snapshot tag %dB exceeds the 0.5KB packet data budget", tag)
	}

	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := snap.Collect()
	if err != nil || res == nil {
		t.Fatalf("snapshot failed: %v %v", res, err)
	}
	if len(res.Nodes) != n || len(res.Edges) != g.NumEdges() {
		t.Fatalf("snapshot %d/%d, want %d/%d", len(res.Nodes), len(res.Edges), n, g.NumEdges())
	}

	// Criticality of one node, verified against the oracle.
	oracle := topo.ArticulationPoints(g)
	node := n / 2
	crit.Check(node, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	got, ok := crit.Verdict()
	if !ok || got != oracle[node] {
		t.Errorf("criticality of %d: got %v/%v, oracle %v", node, got, ok, oracle[node])
	}

	// Blackhole detection across the large fabric.
	hole := g.Edges()[g.NumEdges()/3]
	if err := d.Net.SetBlackhole(hole.U, hole.V, false); err != nil {
		t.Fatal(err)
	}
	bh.Detect(0, d.Net.Sim.Now()+1, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	rep, found, done := bh.Outcome()
	if !done || !found {
		t.Fatalf("blackhole not found at scale: %v %v %v", rep, found, done)
	}
	okFwd := rep.Switch == hole.U && rep.Peer == hole.V
	okRev := rep.Switch == hole.V && rep.Peer == hole.U
	if !okFwd && !okRev {
		t.Errorf("reported %v, want an endpoint of %d-%d", rep, hole.U, hole.V)
	}
}
