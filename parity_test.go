package smartsouth

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"smartsouth/internal/core"
	"smartsouth/internal/openflow"
)

// renderProgram serializes one retained Program to a canonical multi-line
// form: every flow as switch/table/priority/cookie/goto/match/actions and
// every group as id/type/buckets (watch port + actions). Lines are sorted
// so entry-for-entry comparison is independent of compile emit order.
func renderProgram(p *Program) string {
	var lines []string
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		for _, fr := range sp.Flows {
			var acts []string
			for _, a := range fr.Entry.Actions {
				acts = append(acts, a.String())
			}
			lines = append(lines, fmt.Sprintf(
				"flow sw%d t%d prio%d %q goto=%d match=%s actions=[%s]",
				id, fr.Table, fr.Entry.Priority, fr.Entry.Cookie,
				fr.Entry.Goto, fr.Entry.Match.String(), strings.Join(acts, ",")))
		}
		for _, ge := range sp.Groups {
			var bks []string
			for _, b := range ge.Buckets {
				var acts []string
				for _, a := range b.Actions {
					acts = append(acts, a.String())
				}
				bks = append(bks, fmt.Sprintf("{watch=%d [%s]}", b.WatchPort, strings.Join(acts, ",")))
			}
			lines = append(lines, fmt.Sprintf("group sw%d id=%d type=%s buckets=%s",
				id, ge.ID, ge.Type, strings.Join(bks, " ")))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func programKey(p *Program) string { return fmt.Sprintf("%s/%d", p.Service, p.Slot) }

// comparePrograms checks the two control planes retained the same set of
// programs with identical rule footprints.
func comparePrograms(t *testing.T, local, remote *Deployment) {
	t.Helper()
	lp, rp := local.Programs(), remote.Programs()
	if len(lp) != len(rp) {
		t.Fatalf("retained programs: local %d, remote %d", len(lp), len(rp))
	}
	remoteByKey := make(map[string]*Program, len(rp))
	for _, p := range rp {
		if prev := remoteByKey[programKey(p)]; prev != nil {
			t.Fatalf("remote retains duplicate program %s", programKey(p))
		}
		remoteByKey[programKey(p)] = p
	}
	for _, l := range lp {
		r := remoteByKey[programKey(l)]
		if r == nil {
			t.Errorf("program %s retained locally but not remotely", programKey(l))
			continue
		}
		if l.Slots != r.Slots || l.TagBytes != r.TagBytes {
			t.Errorf("%s shape: slots %d/%d tagbytes %d/%d",
				programKey(l), l.Slots, r.Slots, l.TagBytes, r.TagBytes)
		}
		lr, rr := renderProgram(l), renderProgram(r)
		if lr != rr {
			t.Errorf("program %s differs local vs remote:\n--- local ---\n%s\n--- remote ---\n%s",
				programKey(l), lr, rr)
		}
	}
}

// installCohortA installs every service that can share one deployment
// (distinct EtherTypes). Returns the snapshot handle for runtime parity.
func installCohortA(t *testing.T, d *Deployment) *Snapshot {
	t.Helper()
	if _, err := d.InstallTraversal(); err != nil {
		t.Fatal(err)
	}
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallSnapshotSplit(8); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallAnycast(map[uint32][]int{1: {2, 6}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallPriocast(map[uint32][]PrioMember{
		1: {{Node: 2, Prio: 3}, {Node: 8, Prio: 9}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallBlackholeTTL(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallPktLoss(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallCritical(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallChaincast([][]int{{4}, {6}}); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestLocalRemoteProgramParity installs the full service suite through
// both control planes — direct calls and binary OpenFlow 1.3 over TCP —
// and demands the retained Programs agree entry-for-entry, then runs one
// snapshot sweep on each plane and compares the observable outcome.
func TestLocalRemoteProgramParity(t *testing.T) {
	g := Grid(3, 3)
	local := Deploy(g, WithBackend("of13"))
	remote, err := DeployRemote(g, WithBackend("of13"))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	lSnap := installCohortA(t, local)
	rSnap := installCohortA(t, remote)
	comparePrograms(t, local, remote)

	// Runtime parity: one sweep from the same root must produce the same
	// topology report and the same per-service in-band message count.
	lSnap.Trigger(0, 0)
	if err := local.Run(); err != nil {
		t.Fatal(err)
	}
	rSnap.Trigger(0, 0)
	if err := remote.Run(); err != nil {
		t.Fatal(err)
	}
	lRes, err := lSnap.Collect()
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := rSnap.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(lRes.Nodes) != len(rRes.Nodes) || len(lRes.Edges) != len(rRes.Edges) {
		t.Fatalf("snapshot results differ: local %d nodes %d edges, remote %d nodes %d edges",
			len(lRes.Nodes), len(lRes.Edges), len(rRes.Nodes), len(rRes.Edges))
	}
	li := local.Net.InBandCount(core.EthSnapshot)
	ri := remote.Net.InBandCount(core.EthSnapshot)
	if li != ri || li != 4*g.NumEdges()-2*g.NumNodes()+2 {
		t.Fatalf("in-band parity: local %d, remote %d, want %d", li, ri,
			4*g.NumEdges()-2*g.NumNodes()+2)
	}
	lm := local.Metrics().ByEth(core.EthSnapshot)
	rm := remote.Metrics().ByEth(core.EthSnapshot)
	if lm == nil || rm == nil || lm.InBandMsgs != rm.InBandMsgs {
		t.Fatalf("metrics parity: %+v vs %+v", lm, rm)
	}
}

// TestLocalRemoteProgramParityCohabitants covers the services excluded
// from cohort A because they claim EtherTypes used there: the
// smart-counter blackhole detector (EthBlackhole), load inference
// (EthData, conflicting with pktloss) and the two-slot monitor.
func TestLocalRemoteProgramParityCohabitants(t *testing.T) {
	g := Grid(3, 3)
	install := func(d *Deployment) {
		t.Helper()
		if _, err := d.InstallBlackholeCounter(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.InstallLoadMap(); err != nil {
			t.Fatal(err)
		}
	}
	local := Deploy(g, WithBackend("of13"))
	remote, err := DeployRemote(g, WithBackend("of13"))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	install(local)
	install(remote)
	comparePrograms(t, local, remote)

	lMon := Deploy(g, WithBackend("of13"))
	rMon, err := DeployRemote(g, WithBackend("of13"))
	if err != nil {
		t.Fatal(err)
	}
	defer rMon.Close()
	if _, err := lMon.InstallMonitor(0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := rMon.InstallMonitor(0, true); err != nil {
		t.Fatal(err)
	}
	comparePrograms(t, lMon, rMon)
	for _, p := range lMon.Programs() {
		if p.Service == "" {
			t.Fatal("unlabeled program retained")
		}
	}
}

// TestRenderProgramDiscriminates guards the comparison itself: a rendered
// program must change when an entry changes, or parity tests prove
// nothing.
func TestRenderProgramDiscriminates(t *testing.T) {
	mk := func(prio int) *Program {
		p := openflow.NewProgram("x", 0)
		p.Ensure(0, 2)
		p.AddFlow(0, 1, &openflow.FlowEntry{
			Priority: prio, Match: openflow.MatchEth(0x8802),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "k",
		})
		p.AddGroup(0, &openflow.GroupEntry{ID: 5, Type: openflow.GroupFF,
			Buckets: []openflow.Bucket{{WatchPort: 1,
				Actions: []openflow.Action{openflow.Output{Port: 1}}}}})
		return p
	}
	if renderProgram(mk(100)) == renderProgram(mk(101)) {
		t.Fatal("renderProgram ignores priority changes")
	}
	if !strings.Contains(renderProgram(mk(100)), "group sw0 id=5 type=ff") {
		t.Fatalf("render: %s", renderProgram(mk(100)))
	}
}
