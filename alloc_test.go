package smartsouth

import (
	"testing"

	"smartsouth/internal/core"
	"smartsouth/internal/openflow"
)

// TestLookupZeroAllocOnTemplate pins the flow-table dispatch index's
// zero-allocation property against a real installed SmartSouth program
// (not a synthetic table): looking up a traversal packet in the snapshot
// template's entry table must not allocate, hit or miss.
func TestLookupZeroAllocOnTemplate(t *testing.T) {
	g := Ring(20)
	d := Deploy(g)
	if _, err := d.InstallSnapshot(); err != nil {
		t.Fatal(err)
	}
	sw := d.Net.Switch(0)
	pkt := openflow.NewPacket(core.EthSnapshot, core.NewLayout(g).TagBytes())
	pkt.InPort = 1

	tbl := sw.Table(0)
	if tbl.Lookup(pkt) == nil {
		t.Fatal("snapshot template has no table-0 entry for a traversal packet on port 1")
	}
	if avg := testing.AllocsPerRun(1000, func() { tbl.Lookup(pkt) }); avg != 0 {
		t.Errorf("Lookup (hit) allocates %.1f allocs/op, want 0", avg)
	}

	miss := openflow.NewPacket(0x7777, 4) // EtherType no service uses
	miss.InPort = 1
	if tbl.Lookup(miss) != nil {
		t.Fatal("unexpected match for foreign EtherType")
	}
	if avg := testing.AllocsPerRun(1000, func() { tbl.Lookup(miss) }); avg != 0 {
		t.Errorf("Lookup (miss) allocates %.1f allocs/op, want 0", avg)
	}
}
