package smartsouth

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smartsouth/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// ring20SweepFingerprint deploys snapshot + anycast + priocast + critical
// on Ring(20) with a fixed seed, runs all four to completion, and renders
// every observable the simulator produces — the exact hop order, the
// delivered/packet-in sequence, the per-EtherType accounting, the recorded
// hop-trace events and the per-service metrics — into one deterministic
// string.
func ring20SweepFingerprint(extra ...Option) string {
	g := Ring(20)
	opts := append([]Option{WithSeed(7), WithTrace(8192)}, extra...)
	d := Deploy(g, opts...)

	var b strings.Builder

	d.Net.ObserveHops(func(h Hop, pkt *Packet, delivered bool) {
		fmt.Fprintf(&b, "hop %d:%d->%d:%d eth=%#04x size=%d delivered=%v\n",
			h.From, h.FromPort, h.To, h.ToPort, pkt.EthType, pkt.Size(), delivered)
	})
	d.OnDeliver(func(sw int, pkt *Packet) {
		fmt.Fprintf(&b, "self sw=%d eth=%#04x labels=%d\n", sw, pkt.EthType, len(pkt.Labels))
	})

	snap, err := d.InstallSnapshot()
	if err != nil {
		panic(err)
	}
	last := 0
	for v := 0; v < g.NumNodes(); v++ {
		last = v
	}
	any, err := d.InstallAnycast(map[uint32][]int{1: {last}})
	if err != nil {
		panic(err)
	}
	pc, err := d.InstallPriocast(map[uint32][]PrioMember{1: {
		{Node: 5, Prio: 2}, {Node: 15, Prio: 9}}})
	if err != nil {
		panic(err)
	}
	cr, err := d.InstallCritical()
	if err != nil {
		panic(err)
	}

	snap.Trigger(0, 0)
	any.Send(0, 1, nil, 0)
	pc.Send(0, 1, nil, 0)
	cr.Check(0, 0)
	if err := d.Run(); err != nil {
		panic(err)
	}

	if res, err := snap.Collect(); err != nil || res == nil {
		panic(fmt.Sprintf("snapshot: %v %v", res, err))
	} else {
		fmt.Fprintf(&b, "snapshot nodes=%d edges=%d\n", len(res.Nodes), len(res.Edges))
	}
	crit, ok := cr.Verdict()
	fmt.Fprintf(&b, "critical verdict=%v ok=%v\n", crit, ok)

	fmt.Fprintf(&b, "simtime=%d\n", int64(d.Net.Sim.Now()))

	msgs, bytes := d.Net.InBandMsgs(), d.Net.InBandBytes()
	eths := make([]int, 0, len(msgs))
	for eth := range msgs {
		eths = append(eths, int(eth))
	}
	sort.Ints(eths)
	for _, eth := range eths {
		fmt.Fprintf(&b, "inband eth=%#04x msgs=%d bytes=%d\n",
			eth, msgs[uint16(eth)], bytes[uint16(eth)])
	}
	fmt.Fprintf(&b, "total-inband=%d\n", d.Net.TotalInBand())

	for _, ev := range d.TraceEvents() {
		fmt.Fprintf(&b, "trace %s\n", ev.String())
	}

	for _, m := range d.MetricsSnapshot() {
		fmt.Fprintf(&b, "metrics svc=%s slot=%d inband=%d/%dB pktins=%d trig=%d wall=%d\n",
			m.Service, m.Slot, m.InBandMsgs, m.InBandBytes, m.PacketIns,
			m.TriggerPackets, int64(m.WallClock))
		for _, h := range m.RuleHits {
			if h.Packets > 0 {
				fmt.Fprintf(&b, "hit sw=%d t%d %s = %d\n", h.Switch, h.Table, h.Cookie, h.Packets)
			}
		}
	}
	fmt.Fprintf(&b, "4E-2n+2=%d\n", 4*g.NumEdges()-2*g.NumNodes()+2)
	fmt.Fprintf(&b, "snapshot-inband=%d\n", msgs[core.EthSnapshot])
	return b.String()
}

// TestDeterminismGolden pins the simulator's observable behaviour —
// byte-for-byte — to a golden file captured before the zero-alloc event
// loop, packet pooling and flow-table indexing changes. Any divergence in
// hop order, accounting, trace content or metrics under a fixed seed fails
// this test.
func TestDeterminismGolden(t *testing.T) {
	// The golden fingerprint records of13 hop sizes (DFS tag bytes in
	// flight); the repeatability test below runs under whatever backend
	// SMARTSOUTH_BACKEND selects.
	got := ring20SweepFingerprint(WithBackend("of13"))
	path := filepath.Join("testdata", "ring20_sweep.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		g, w := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				t.Fatalf("fingerprint diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, g[i], w[i])
			}
		}
		t.Fatalf("fingerprint length %d, golden %d", len(got), len(want))
	}
}

// TestDeterminismRepeatable runs the same fixed-seed sweep twice in one
// process and asserts identical fingerprints — catching any use of global
// mutable state (e.g. the packet pool) that could leak between runs.
func TestDeterminismRepeatable(t *testing.T) {
	a := ring20SweepFingerprint()
	b := ring20SweepFingerprint()
	if a != b {
		t.Fatal("two identical-seed sweeps produced different fingerprints")
	}
}
