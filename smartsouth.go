// Package smartsouth is a faithful, simulator-backed implementation of
// "Reclaiming the Brain: Useful OpenFlow Functions in the Data Plane"
// (Schiff, Borokhovich, Schmid — HotNets 2014).
//
// SmartSouth compiles an in-band depth-first network traversal — and the
// paper's four case-study services on top of it — into ordinary OpenFlow
// 1.3 flow and group entries. A generic match-action pipeline (package
// internal/openflow) executes those rules inside a deterministic
// discrete-event network simulator (package internal/network); nothing
// service-specific runs at packet time, which is the paper's point: the
// data plane stays dumb and formally inspectable, yet can take topology
// snapshots, deliver anycast/priocast messages, detect blackholes and
// packet loss with switch-local smart counters, and decide node
// criticality — all with O(1) controller involvement.
//
// Typical use:
//
//	g := smartsouth.Grid(4, 4)
//	d := smartsouth.Deploy(g, smartsouth.WithTrace(1024))
//	snap, _ := d.InstallSnapshot()
//	snap.Trigger(0, 0)
//	d.Run()
//	res, _ := snap.Collect() // res.Nodes, res.Edges
//	for _, m := range d.MetricsSnapshot() { ... }
//	for _, ev := range d.TraceEvents() { ... }
//
// Deploy and DeployRemote return the same Deployment type: the only
// difference is the control plane underneath — direct calls into the
// simulated switches (local) or binary OpenFlow 1.3 over per-switch TCP
// sessions (remote). Every service installer, the observability layer
// (hop traces, rule-hit counters, per-service metrics), Uninstall and the
// verifiers work identically on both.
package smartsouth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"smartsouth/internal/analysis"
	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/dump"
	"smartsouth/internal/metrics"
	"smartsouth/internal/monitor"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/remote"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
	"smartsouth/internal/trace"
	"smartsouth/internal/verify"
)

// Re-exported building blocks. The internal packages carry the full API;
// these aliases are the supported public surface.
type (
	// Graph is a port-numbered undirected topology.
	Graph = topo.Graph
	// Edge is one link with its port numbers on both endpoints.
	Edge = topo.Edge
	// Network is the discrete-event data plane.
	Network = network.Network
	// Controller is the out-of-band control plane.
	Controller = controller.Controller
	// Packet is the unit the OpenFlow pipeline processes.
	Packet = openflow.Packet
	// Time is simulation time in nanoseconds.
	Time = network.Time
	// Hop is one in-band link crossing, as observed by Network.OnHop.
	Hop = network.Hop

	// Snapshot is the §3.1 in-band topology snapshot service.
	Snapshot = core.Snapshot
	// SnapshotSplit is the snapshot variant that splits its report across
	// bounded-size fragments (the §3.1 splitting remark).
	SnapshotSplit = core.SnapshotSplit
	// SnapshotResult is a decoded snapshot.
	SnapshotResult = core.Result
	// Anycast is the §3.2 anycast service.
	Anycast = core.Anycast
	// Priocast is the §3.2 priority-anycast service.
	Priocast = core.Priocast
	// PrioMember is one priocast receiver with its priority.
	PrioMember = core.PrioMember
	// BlackholeTTL is the §3.3 TTL-binary-search blackhole detector.
	BlackholeTTL = core.BlackholeTTL
	// BlackholeCounter is the §3.3 smart-counter blackhole detector.
	BlackholeCounter = core.BlackholeCounter
	// BlackholeReport names a located blackhole.
	BlackholeReport = core.Report
	// PktLoss is the §3.3 packet-loss monitor.
	PktLoss = core.PktLoss
	// LossReport names a directed link with detected loss.
	LossReport = core.LossReport
	// Critical is the §3.4 critical-node service.
	Critical = core.Critical
	// Traversal is the bare SmartSouth template (an in-band liveness
	// sweep).
	Traversal = core.Traversal
	// Chaincast is the §3.2 service-chaining extension (middlebox chains).
	Chaincast = core.Chaincast
	// LoadMap is the §4 load-inference extension built on smart counters.
	LoadMap = core.LoadMap
	// PortLoad identifies a sampled port in a LoadMap report.
	PortLoad = core.PortLoad
	// PortKnock is the knock-sequence guard — wire-speed keyed state under
	// the stateful backend, controller-assisted under OF13.
	PortKnock = core.PortKnock
	// Backend is a compile backend: a lowering of the service IR onto one
	// data-plane primitive set (of13 flow/groups, or stateful XFSM tables).
	Backend = core.Backend
	// VerifyIssue is one finding of the static data-plane checker.
	VerifyIssue = verify.Issue
	// AnalysisFinding is one finding of the network-wide symbolic
	// analyzer (conflicts, loops, blackholes; see internal/analysis).
	AnalysisFinding = analysis.Finding
	// AnalysisOptions tunes the network-wide analyzer.
	AnalysisOptions = analysis.Options
	// ControlPlane is the interface services program against; both the
	// local controller and the TCP fabric implement it.
	ControlPlane = core.ControlPlane
	// Supervisor retries traversals whose trigger packet was lost to a
	// mid-execution failure (the paper's stated limitation).
	Supervisor = core.Supervisor
	// Monitor is the troubleshooting application composing the services:
	// periodic snapshot diffing plus a blackhole watchdog.
	Monitor = monitor.Monitor
	// MonitorEvent is one topology change or silent-failure detection.
	MonitorEvent = monitor.Event
	// Fabric is the OpenFlow-over-TCP control plane (see DeployRemote).
	Fabric = remote.Fabric
	// Program is the declarative install unit every service compiles to:
	// the full set of flow and group entries, per switch, checked before
	// installation and retained by the control plane for accounting.
	Program = openflow.Program

	// Stats counts control-channel traffic (flow-mods, packet-outs,
	// packet-ins, bytes) on either control plane.
	Stats = controller.Stats
	// TraceEvent is one recorded pipeline execution: switch, in-port,
	// matched rules, group-bucket choices, decoded tag fields, emissions.
	TraceEvent = trace.Event
	// TraceRecorder is the ring-buffer hop-trace store (see WithTrace).
	TraceRecorder = trace.Recorder
	// SpanRecord is one execution span of the causal tracer (see
	// WithTimeline): a pipeline execution of a traced packet, linked to
	// its parent execution so traversals reconstruct as trees.
	SpanRecord = telemetry.SpanRecord
	// TraceTree is one reconstructed traversal (see Traces): the spans of
	// a trace id linked parent→child, with cross-shard edge counts.
	TraceTree = trace.TraceTree
	// SpanNode is one node of a TraceTree.
	SpanNode = trace.SpanNode
	// Flight is the always-on flight recorder: a fixed ring of recent
	// data-plane events for post-mortem JSONL dumps (see Deployment.Flight).
	Flight = telemetry.Flight
	// FlightRecord is one flight-recorder ring entry.
	FlightRecord = telemetry.FlightRecord
	// Telemetry is a point-in-time snapshot of the process-wide telemetry
	// registry (counters, gauges, histogram views with quantiles).
	Telemetry = telemetry.Snapshot
	// ServiceMetrics is the aggregated observability view of one deployed
	// service: install cost, trigger/collect messages, in-band messages
	// and bytes (the Table 2 columns), traversal wall-clock, rule hits.
	ServiceMetrics = metrics.ServiceMetrics
	// MetricsRegistry aggregates ServiceMetrics for a deployment.
	MetricsRegistry = metrics.Registry
	// RuleHit is the live packet counter of one installed flow rule.
	RuleHit = openflow.RuleHit
	// GroupHit is the live execution counter of one group bucket.
	GroupHit = openflow.GroupHit
)

// Topology generators.
var (
	Line            = topo.Line
	Ring            = topo.Ring
	Star            = topo.Star
	Tree            = topo.Tree
	Grid            = topo.Grid
	RandomConnected = topo.RandomConnected
	FatTree         = topo.FatTree
	BarabasiAlbert  = topo.BarabasiAlbert
	Waxman          = topo.Waxman
	Clos            = topo.Clos
	ISP             = topo.ISP
	NewGraph        = topo.NewGraph
)

// Partition maps every node of a graph to one of k shards (greedy BFS
// growth, deterministic) — the assignment a sharded deployment runs on.
// EdgeCut counts the cross-shard edges of such an assignment.
var (
	Partition = topo.Partition
	EdgeCut   = topo.EdgeCut
)

// Options configures a deployment's simulated network. It remains
// accepted everywhere an Option is: Deploy(g, Options{Seed: 7}) and
// Deploy(g, WithSeed(7)) are equivalent; the functional options are the
// preferred form because they compose and can carry settings (WithTrace)
// beyond the network struct.
type Options = network.Options

// Option configures a deployment. Options (the struct) satisfies it too.
type Option = network.Option

// Functional options.
var (
	// WithSeed seeds the loss process of lossy links.
	WithSeed = network.WithSeed
	// WithLinkDelay sets the one-way latency of every link.
	WithLinkDelay = network.WithLinkDelay
	// WithEventLimit bounds simulator events per Run.
	WithEventLimit = network.WithEventLimit
	// WithTrace enables the per-packet hop trace, retaining the last n
	// pipeline executions (n <= 0 selects the default capacity).
	WithTrace = network.WithTrace
	// WithoutTelemetry disables the always-on instrumentation (counters,
	// histograms, flight recorder) — the off arm of the overhead
	// benchmark.
	WithoutTelemetry = network.WithoutTelemetry
	// WithFlightCap sizes the flight-recorder ring (0 default, negative
	// disables the recorder).
	WithFlightCap = network.WithFlightCap
	// WithBackend selects the compile backend ("of13" or "stateful");
	// empty defers to the SMARTSOUTH_BACKEND environment variable, then
	// of13. Every installer of the deployment lowers through it.
	WithBackend = network.WithBackend
	// WithAnalysis gates every install on the network-wide symbolic
	// analysis: a service whose composition with the already-installed
	// services produces an error-severity finding (cross-service
	// conflict, forwarding loop, blackhole) is rejected before any rule
	// reaches a switch.
	WithAnalysis = network.WithAnalysis
	// WithShards partitions the topology across n shards simulated by
	// concurrent event loops under conservative time windows. n <= 1
	// keeps the classic single-loop simulator (byte-identical behaviour);
	// n > 1 is deterministic for any fixed n but may order simultaneous
	// independent events differently than the single loop.
	WithShards = network.WithShards
	// WithTimeline enables the causal traversal tracer, retaining the
	// last n execution spans per lane (n <= 0 selects the default
	// capacity). Read the result with SpanRecords/Traces/WriteTimeline,
	// or from the /traces endpoint of ServeTelemetry.
	WithTimeline = network.WithTimeline
)

// BuildTraces reassembles merged span records into per-traversal trees —
// the offline half of the causal tracer, for spans obtained outside a
// Deployment (e.g. replayed from a JSONL dump).
var BuildTraces = trace.BuildTraces

// TelemetrySnapshot captures the process-wide telemetry registry:
// event/hop/packet-in counters, pool hit rate, flow-table fan-out,
// latency histograms with quantiles. It aggregates across every
// deployment in the process.
func TelemetrySnapshot() Telemetry { return telemetry.M.Snap() }

// ServeTelemetry starts the observability HTTP server on addr
// (host:port; :0 picks a free port) and returns the bound address. It
// serves /metrics (Prometheus text), /telemetry (JSON snapshot),
// /debug/vars (expvar) and /debug/pprof.
var ServeTelemetry = telemetry.Serve

// Deployment couples one topology with its simulated network and a
// control plane — local (Ctl) or OpenFlow-over-TCP (Fabric) — and hands
// out service slots so several SmartSouth services coexist on the same
// switches. All installers, the observability layer and the verifiers
// behave identically on both planes; that is tested.
type Deployment struct {
	Graph *Graph
	Net   *Network

	// CP is the control plane services are installed through. It is the
	// metrics-metered decoration of Ctl or Fabric; use it for anything
	// the ControlPlane interface offers.
	CP ControlPlane
	// Ctl is the local controller, nil on remote deployments.
	Ctl *Controller
	// Fabric is the TCP control plane, nil on local deployments.
	Fabric *Fabric

	// Trace is the hop-trace recorder, nil unless WithTrace was given.
	Trace *TraceRecorder

	// FlightDumpPath, when set, is where the flight recorder's post-mortem
	// JSONL is written whenever Run fails or the analysis gate rejects a
	// program. Leave empty to dump only on explicit DumpFlight calls.
	FlightDumpPath string

	reg   *metrics.Registry
	slots *core.SlotAllocator
	be    core.Backend

	// Timeline store served by SpanRecords/Traces and /traces. The live
	// per-lane span rings are only safe to read at a barrier, so Run
	// drains the new records into this slice under the mutex (O(new
	// spans), not O(ring capacity)) and readers — including the HTTP
	// handler, any goroutine, any time — copy from it. Retention is
	// bounded at twice the aggregate ring capacity (timelineMax), so a
	// long-lived traced deployment keeps the most recent traversals, like
	// the rings themselves.
	timelineMu  sync.Mutex
	timeline    []SpanRecord
	timelineMax int
}

// BackendName returns the compile backend this deployment lowers services
// with ("of13" or "stateful").
func (d *Deployment) BackendName() string { return d.be.Name() }

// resolveBackend maps a deployment's configured backend name to the core
// backend: the explicit WithBackend option wins, then the
// SMARTSOUTH_BACKEND environment variable, then of13.
func resolveBackend(cfg network.Config) (core.Backend, error) {
	name := cfg.Backend
	if name == "" {
		name = os.Getenv("SMARTSOUTH_BACKEND")
	}
	if name == "" {
		return core.OF13, nil
	}
	return core.BackendByName(name)
}

func newDeployment(g *Graph, cfg network.Config) *Deployment {
	net := network.New(g, cfg.Opts)
	d := &Deployment{
		Graph: g,
		Net:   net,
		reg:   metrics.NewRegistry(),
		slots: core.NewSlotAllocator(0),
	}
	// In-band attribution: every link transmission of a claimed EtherType
	// is credited to its service, with the simulation timestamp feeding
	// the traversal wall-clock.
	net.ObserveHops(func(_ Hop, pkt *Packet, _ bool) {
		d.reg.NoteHop(net.Sim.Now(), pkt.EthType, pkt.Size())
	})
	if cfg.TraceCap > 0 {
		d.Trace = trace.NewRecorder(cfg.TraceCap)
		net.ObserveExec(func(sw, inPort int, pkt *openflow.Packet, res *openflow.Result) {
			d.Trace.OnExec(net.Sim.Now(), sw, inPort, pkt, res)
		})
	}
	if cfg.Opts.Timeline > 0 {
		d.timelineMax = cfg.Opts.Timeline * (net.Shards() + 1)
		// Serve this deployment's timeline on /traces. Registration is
		// last-wins process state, matching the process-global metrics: the
		// most recently deployed traced network is what the endpoint shows.
		telemetry.SetTraceSource(func(w io.Writer) error {
			return dump.WriteChromeTrace(w, d.SpanRecords())
		})
	}
	return d
}

// analysisGate decorates a control plane with the network-wide symbolic
// install gate (see WithAnalysis). It satisfies core.ProgramGater, so
// core's installProgram choke point consults it for every non-transient
// program before any rule reaches a switch.
type analysisGate struct {
	ControlPlane
	d *Deployment
}

// GateProgram composes the candidate with the retained programs and
// rejects it if the analyzer finds any error-severity defect.
func (g *analysisGate) GateProgram(p *Program) error {
	progs := append(g.ControlPlane.Programs(), p)
	errs := analysis.Errors(analysis.CheckDeployment(progs, g.d.Graph, g.d.analysisOptions()))
	if len(errs) > 0 {
		g.d.Net.FlightNote("analysis-gate rejection: " + errs[0].String())
		g.d.dumpFlightOnFailure("analysis gate")
		return fmt.Errorf("static analysis found %d error(s), first: %s", len(errs), errs[0])
	}
	return nil
}

// analysisOptions is the deployment's standard analyzer configuration:
// the slot geometry every service compiles against, and host data
// traffic as an additional symbolic seed.
func (d *Deployment) analysisOptions() AnalysisOptions {
	return AnalysisOptions{
		HostEthTypes: []uint16{core.EthData},
		SlotTables:   core.SlotTables,
		SlotGroups:   core.SlotGroups,
	}
}

// Analyze runs the network-wide symbolic analysis over the retained
// programs on demand: cross-service conflicts, forwarding loops,
// blackholes and unreachable rules, without simulating a packet.
// Findings come back most severe first; analysis.Errors filters.
func (d *Deployment) Analyze() []AnalysisFinding {
	return analysis.CheckDeployment(d.CP.Programs(), d.Graph, d.analysisOptions())
}

// Deploy builds the network and attaches the local controller. The
// compile backend comes from WithBackend, then the SMARTSOUTH_BACKEND
// environment variable, then of13; an unknown name panics (Deploy has no
// error path, and a misconfigured backend must not silently fall back).
func Deploy(g *Graph, opts ...Option) *Deployment {
	cfg := network.Resolve(opts...)
	be, err := resolveBackend(cfg)
	if err != nil {
		panic("smartsouth: " + err.Error())
	}
	d := newDeployment(g, cfg)
	d.be = be
	d.Ctl = controller.New(d.Net)
	d.CP = metrics.Meter(d.Ctl, d.reg)
	if cfg.Analysis {
		d.CP = &analysisGate{ControlPlane: d.CP, d: d}
	}
	d.Ctl.OnPacketIn = func(pi controller.PacketIn) {
		d.reg.NotePacketIn(pi.At, pi.Pkt.EthType, pi.Pkt.Size())
	}
	return d
}

// DeployRemote builds the network and attaches the TCP control plane (one
// OpenFlow 1.3 session per switch). Close the deployment when done. The
// returned Deployment offers the same installers and observability as a
// local one.
func DeployRemote(g *Graph, opts ...Option) (*Deployment, error) {
	cfg := network.Resolve(opts...)
	be, err := resolveBackend(cfg)
	if err != nil {
		return nil, err
	}
	if be.Stateful() {
		return nil, fmt.Errorf("smartsouth: the stateful backend compiles to state tables, which the OpenFlow 1.3 wire protocol cannot carry; use the local control plane or the of13 backend")
	}
	d := newDeployment(g, cfg)
	d.be = be
	f, err := remote.New(d.Net)
	if err != nil {
		return nil, err
	}
	d.Fabric = f
	d.CP = metrics.Meter(f, d.reg)
	if cfg.Analysis {
		d.CP = &analysisGate{ControlPlane: d.CP, d: d}
	}
	f.OnPacketIn = func(pi controller.PacketIn) {
		d.reg.NotePacketIn(pi.At, pi.Pkt.EthType, pi.Pkt.Size())
	}
	return d, nil
}

// Run processes the data plane to quiescence. On a remote deployment this
// synchronises all sessions (barrier), runs the simulator, and waits for
// relayed packet-ins.
func (d *Deployment) Run() error {
	_, err := d.CP.RunNetwork()
	if d.timelineMax > 0 {
		// Harvest the spans this run recorded: the lanes are parked now,
		// which is the only time their rings may be read. Appending only
		// the new records keeps the per-run cost proportional to the
		// run's own span count; sim time is monotone across runs, so the
		// accumulated slice stays globally time-ordered.
		d.timelineMu.Lock()
		d.timeline = d.Net.DrainSpans(d.timeline)
		if len(d.timeline) > 2*d.timelineMax {
			d.timeline = append(d.timeline[:0], d.timeline[len(d.timeline)-d.timelineMax:]...)
		}
		d.timelineMu.Unlock()
	}
	if err != nil {
		d.Net.FlightNote("run error: " + err.Error())
		d.dumpFlightOnFailure("run")
	}
	return err
}

// Close tears down the TCP sessions of a remote deployment; it is a no-op
// on a local one, so generic code can defer it unconditionally.
func (d *Deployment) Close() {
	if d.Fabric != nil {
		d.Fabric.Close()
	}
}

// Stats returns the control-channel traffic counters of the underlying
// plane.
func (d *Deployment) Stats() Stats {
	if d.Ctl != nil {
		return d.Ctl.Stats
	}
	return d.Fabric.Stats
}

// Slot reserves the next service slot, for callers driving the core
// installers directly against CP.
func (d *Deployment) Slot() int { return d.slots.Next() }

// observe registers a service's EtherTypes with the hop-trace decoder so
// its events carry the decoded DFS state (start, par, cur). l may be nil
// when the inner layout is not exposed (monitor); events are then labeled
// but not decoded.
func (d *Deployment) observe(m *metrics.ServiceMetrics, l *core.Layout) {
	// Under the stateful backend the packet carries only the start field —
	// par/cur live in switch state tables, so there is nothing more to
	// decode from the tag.
	stateful := l != nil && l.Stateful()
	if l != nil {
		// The flight recorder decodes the same DFS state, so a post-mortem
		// JSONL dump replays the traversal's start/par/cur at every hop.
		names := [3]string{"start", "par", "cur"}
		flightFields := func(sw int) [3]openflow.Field {
			return [3]openflow.Field{l.Start, l.Par[sw], l.Cur[sw]}
		}
		if stateful {
			names = [3]string{"start", "", ""}
			flightFields = func(sw int) [3]openflow.Field {
				return [3]openflow.Field{l.Start}
			}
		}
		for _, eth := range m.EtherTypes {
			d.Net.RegisterFlightTags(eth, names, flightFields)
		}
	}
	if d.Trace == nil {
		return
	}
	var fields trace.FieldsFunc
	if l != nil {
		fields = func(sw int) []openflow.Field {
			return []openflow.Field{l.Start, l.Par[sw], l.Cur[sw]}
		}
		if stateful {
			fields = func(sw int) []openflow.Field {
				return []openflow.Field{l.Start}
			}
		}
	}
	for _, eth := range m.EtherTypes {
		d.Trace.RegisterService(eth, m.Service, fields)
	}
}

// InstallTraversal installs the bare template.
func (d *Deployment) InstallTraversal() (*Traversal, error) {
	slot := d.slots.Next()
	m := d.reg.Register("traversal", slot, 1, core.EthTraversal)
	tr, err := core.InstallTraversal(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, tr.L)
	return tr, nil
}

// InstallSnapshot installs the topology snapshot service.
func (d *Deployment) InstallSnapshot() (*Snapshot, error) {
	slot := d.slots.Next()
	m := d.reg.Register("snapshot", slot, 1, core.EthSnapshot)
	snap, err := core.InstallSnapshot(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, snap.L)
	return snap, nil
}

// InstallSnapshotSplit installs the splitting snapshot with the given
// per-fragment record budget.
func (d *Deployment) InstallSnapshotSplit(budget int) (*SnapshotSplit, error) {
	slot := d.slots.Next()
	m := d.reg.Register("snapsplit", slot, 1, core.EthSnapSplit)
	ss, err := core.InstallSnapshotSplit(d.CP, d.Graph, slot, budget, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, ss.L)
	return ss, nil
}

// InstallAnycast installs the anycast service with the given groups
// (group id -> member switches).
func (d *Deployment) InstallAnycast(groups map[uint32][]int) (*Anycast, error) {
	slot := d.slots.Next()
	m := d.reg.Register("anycast", slot, 1, core.EthAnycast)
	ac, err := core.InstallAnycast(d.CP, d.Graph, slot, groups, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, ac.L)
	return ac, nil
}

// InstallPriocast installs the priocast service with the given groups.
func (d *Deployment) InstallPriocast(groups map[uint32][]PrioMember) (*Priocast, error) {
	slot := d.slots.Next()
	m := d.reg.Register("priocast", slot, 1, core.EthPriocast)
	pc, err := core.InstallPriocast(d.CP, d.Graph, slot, groups, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, pc.L)
	return pc, nil
}

// InstallBlackholeTTL installs the TTL-probing blackhole detector.
func (d *Deployment) InstallBlackholeTTL() (*BlackholeTTL, error) {
	slot := d.slots.Next()
	m := d.reg.Register("blackhole-ttl", slot, 1, core.EthBlackhole)
	bh, err := core.InstallBlackholeTTL(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, bh.L)
	return bh, nil
}

// InstallBlackholeCounter installs the smart-counter blackhole detector.
func (d *Deployment) InstallBlackholeCounter() (*BlackholeCounter, error) {
	slot := d.slots.Next()
	m := d.reg.Register("blackhole-ctr", slot, 1, core.EthBlackhole, core.EthBlackholeChk)
	bh, err := core.InstallBlackholeCounter(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, bh.L)
	return bh, nil
}

// InstallPktLoss installs the packet-loss monitor (nil primes selects
// core.DefaultPrimes).
func (d *Deployment) InstallPktLoss(primes []int) (*PktLoss, error) {
	slot := d.slots.Next()
	m := d.reg.Register("pktloss", slot, 1, core.EthPktLoss, core.EthData)
	pl, err := core.InstallPktLoss(d.CP, d.Graph, slot, primes, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, pl.L)
	return pl, nil
}

// InstallCritical installs the critical-node service.
func (d *Deployment) InstallCritical() (*Critical, error) {
	slot := d.slots.Next()
	m := d.reg.Register("critical", slot, 1, core.EthCritical)
	cr, err := core.InstallCritical(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, cr.L)
	return cr, nil
}

// InstallChaincast installs the service-chaining extension over the given
// ordered middlebox groups (one service slot per stage).
func (d *Deployment) InstallChaincast(chain [][]int) (*Chaincast, error) {
	base := d.slots.Reserve(len(chain))
	m := d.reg.Register("chaincast", base, len(chain), core.EthChaincast)
	cc, err := core.InstallChaincast(d.CP, d.Graph, base, chain, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, cc.L)
	return cc, nil
}

// InstallLoadMap installs the load-inference extension. It owns the
// EthData ingress rules, so it cannot share a deployment with PktLoss.
func (d *Deployment) InstallLoadMap() (*LoadMap, error) {
	slot := d.slots.Next()
	m := d.reg.Register("loadmap", slot, 1, core.EthLoadMap, core.EthData)
	lm, err := core.InstallLoadMap(d.CP, d.Graph, slot, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, lm.L)
	return lm, nil
}

// InstallPortKnock installs the knock-sequence guard at node guard with
// the given secret code sequence. The packet tag carries only the client
// id and knock code, so no DFS layout is registered with the observers.
func (d *Deployment) InstallPortKnock(guard int, seq []uint32) (*PortKnock, error) {
	slot := d.slots.Next()
	m := d.reg.Register("portknock", slot, 1, core.EthKnock, core.EthGuarded)
	pk, err := core.InstallPortKnock(d.CP, d.Graph, slot, guard, seq, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, nil)
	return pk, nil
}

// InstallMonitor installs the troubleshooting monitor (snapshot diffing
// from root; optional blackhole watchdog). It consumes two service slots.
func (d *Deployment) InstallMonitor(root int, watchdog bool) (*Monitor, error) {
	base := d.slots.Reserve(2)
	m := d.reg.Register("monitor", base, 2,
		core.EthSnapshot, core.EthBlackhole, core.EthBlackholeChk)
	mon, err := monitor.New(d.CP, d.Graph, base, root, watchdog, core.WithBackend(d.be))
	if err != nil {
		return nil, err
	}
	d.observe(m, nil)
	return mon, nil
}

// Uninstall removes every flow and group entry belonging to a service
// (its table blocks, its group-ID ranges, and the table-0 dispatcher
// rules steering into them) from all switches — flow-mod/group-mod
// DELETEs in OpenFlow terms. The slots to clear are derived from the
// retained Programs: uninstalling any slot of a multi-slot service
// (chaincast, monitor) removes the whole service. Other services keep
// running; cleared slots are NOT reused by future installs.
func (d *Deployment) Uninstall(slot int) {
	covered := map[int]bool{slot: true}
	for _, p := range d.CP.Programs() {
		if p.CoversSlot(slot) {
			for s := p.Slot; s < p.Slot+core.SlotSpan(p); s++ {
				covered[s] = true
			}
		}
	}
	for s := range covered {
		tLo, tHi := core.SlotTables(s)
		gLo, gHi := core.SlotGroups(s)
		for i := 0; i < d.Net.NumSwitches(); i++ {
			sw := d.Net.Switch(i)
			for t := tLo; t < tHi; t++ {
				sw.ClearTable(t)
			}
			sw.Table(0).RemoveIf(func(e *openflow.FlowEntry) bool {
				return e.Goto >= tLo && e.Goto < tHi
			})
			sw.RemoveGroupRange(gLo, gHi)
			// Removal outdates the compiled matchers (the mutators only bump
			// versions); recompile so remaining services stay on the fast path.
			sw.CompileDispatch()
		}
		d.CP.DropPrograms(s)
	}
}

// Programs returns the installed programs the control plane retains — the
// declarative record of every service's rule footprint.
func (d *Deployment) Programs() []*Program {
	return d.CP.Programs()
}

// HitCounters reads the live rule-hit and group-bucket counters of the
// programs covering slot — the per-rule view of where a service's packets
// actually went (OFPMP_FLOW / OFPMP_GROUP in OpenFlow terms).
func (d *Deployment) HitCounters(slot int) ([]RuleHit, []GroupHit) {
	var rules []RuleHit
	var groups []GroupHit
	for _, p := range d.CP.Programs() {
		if !p.CoversSlot(slot) {
			continue
		}
		r, g := p.HitCounters(d.liveSwitch)
		rules = append(rules, r...)
		groups = append(groups, g...)
	}
	return rules, groups
}

func (d *Deployment) liveSwitch(sw int) *openflow.Switch { return d.Net.Switch(sw) }

// MetricsSnapshot returns the per-service observability metrics, ordered
// by slot, with the live rule-hit/group-bucket counters of each service's
// retained programs attached.
func (d *Deployment) MetricsSnapshot() []ServiceMetrics {
	d.reg.ClearHits()
	for _, p := range d.CP.Programs() {
		r, g := p.HitCounters(d.liveSwitch)
		d.reg.AttachHits(p.Slot, r, g)
	}
	return d.reg.Snapshot()
}

// MetricsJSON renders MetricsSnapshot as indented JSON.
func (d *Deployment) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(d.MetricsSnapshot(), "", "  ")
}

// Metrics exposes the live registry, for callers that want to reset it or
// look up a service by EtherType.
func (d *Deployment) Metrics() *MetricsRegistry { return d.reg }

// TraceEvents returns the retained hop-trace events, oldest first (nil
// without WithTrace).
func (d *Deployment) TraceEvents() []TraceEvent {
	if d.Trace == nil {
		return nil
	}
	return d.Trace.Events()
}

// SpanRecords returns a copy of the causal tracer's retained execution
// spans in simulation-time order, accumulated across every Run of this
// deployment (nil without WithTimeline). Safe from any goroutine: the
// store is only appended to at end-of-run barriers, under a mutex both
// sides take.
func (d *Deployment) SpanRecords() []SpanRecord {
	d.timelineMu.Lock()
	defer d.timelineMu.Unlock()
	if d.timeline == nil {
		return nil
	}
	return append([]SpanRecord(nil), d.timeline...)
}

// Traces reconstructs the retained spans into per-traversal trees,
// ascending by trace id (nil without WithTimeline). A tree is Complete
// when its root and every intermediate span are still retained; on long
// runs the store keeps only the most recent traversals whole.
func (d *Deployment) Traces() []*TraceTree {
	recs := d.SpanRecords()
	if recs == nil {
		return nil
	}
	return trace.BuildTraces(recs)
}

// WriteTimeline renders the retained spans as Chrome trace-event JSON —
// loadable in Perfetto / chrome://tracing, with one swimlane block per
// shard and flow arrows on cross-shard edges.
func (d *Deployment) WriteTimeline(w io.Writer) error {
	return dump.WriteChromeTrace(w, d.SpanRecords())
}

// WriteSpanJSONL dumps the retained spans as one JSON object per line.
func (d *Deployment) WriteSpanJSONL(w io.Writer) error {
	return dump.WriteSpanJSONL(w, d.SpanRecords())
}

// Flight returns the deployment's flight recorder — the always-on fixed
// ring of recent data-plane events (nil when telemetry or the recorder is
// disabled via WithoutTelemetry / WithFlightCap(-1)).
func (d *Deployment) Flight() *Flight { return d.Net.Flight() }

// DumpFlight writes the flight recorder's retained records to w as JSONL,
// oldest first. It is the post-mortem: the final records replay the last
// traversal hop by hop, with the decoded DFS tag state (start, par, cur)
// of every pipeline execution.
func (d *Deployment) DumpFlight(w io.Writer) error {
	if d.Net.Flight() == nil {
		return fmt.Errorf("flight recorder disabled")
	}
	telemetry.M.FlightDumps.Inc()
	// On a sharded network this merges the per-lane rings by simulation
	// time; on the classic single loop it is the ring verbatim.
	return d.Net.WriteFlightJSONL(w)
}

// WriteFlightDump writes the flight recorder JSONL to path.
func (d *Deployment) WriteFlightDump(path string) error {
	var buf bytes.Buffer
	if err := d.DumpFlight(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// dumpFlightOnFailure writes the post-mortem to FlightDumpPath, if one is
// configured. Dump errors must not mask the triggering failure, so they
// are reported on stderr only.
func (d *Deployment) dumpFlightOnFailure(why string) {
	if d.FlightDumpPath == "" || d.Net.Flight() == nil {
		return
	}
	if err := d.WriteFlightDump(d.FlightDumpPath); err != nil {
		fmt.Fprintf(os.Stderr, "smartsouth: flight dump (%s) to %s failed: %v\n", why, d.FlightDumpPath, err)
	}
}

// VerifyPrograms re-runs the pre-install static check over every retained
// program. Installation already enforces it; this re-checks the recorded
// intent (e.g. after topology or code changes) without touching switches.
func (d *Deployment) VerifyPrograms() []VerifyIssue {
	var all []VerifyIssue
	for _, p := range d.CP.Programs() {
		all = append(all, verify.CheckProgram(p, verify.Options{})...)
	}
	return all
}

// Verify statically checks the installed configuration of every switch
// and returns all findings (see internal/verify for the property list).
func (d *Deployment) Verify() []VerifyIssue {
	var all []VerifyIssue
	for i := 0; i < d.Net.NumSwitches(); i++ {
		all = append(all, verify.Switch(d.Net.Switch(i), verify.Options{})...)
	}
	return all
}

// VerifyErrors returns only Err-severity findings from Verify.
func (d *Deployment) VerifyErrors() []VerifyIssue {
	return verify.Errors(d.Verify())
}

// OnDeliver registers a callback for packets delivered to a switch-local
// host (the SELF port) — e.g. anycast receivers.
func (d *Deployment) OnDeliver(fn func(sw int, pkt *Packet)) {
	d.Net.OnSelf = fn
}

// ConfigBytes sums the modelled hardware footprint (flow + group entries)
// over all retained programs — the rule-space metric of the scalability
// claim, read off the declarative record rather than by walking switches.
func (d *Deployment) ConfigBytes() int {
	total := 0
	for _, p := range d.CP.Programs() {
		total += p.Bytes()
	}
	return total
}

// FlowEntries sums flow entries over all retained programs.
func (d *Deployment) FlowEntries() int {
	total := 0
	for _, p := range d.CP.Programs() {
		total += p.FlowCount()
	}
	return total
}

// GroupEntries sums group entries over all retained programs.
func (d *Deployment) GroupEntries() int {
	total := 0
	for _, p := range d.CP.Programs() {
		total += p.GroupCount()
	}
	return total
}

// StateEntries sums state-table transition entries over all retained
// programs — zero under the of13 backend.
func (d *Deployment) StateEntries() int {
	total := 0
	for _, p := range d.CP.Programs() {
		total += p.StateCount()
	}
	return total
}
