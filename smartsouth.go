// Package smartsouth is a faithful, simulator-backed implementation of
// "Reclaiming the Brain: Useful OpenFlow Functions in the Data Plane"
// (Schiff, Borokhovich, Schmid — HotNets 2014).
//
// SmartSouth compiles an in-band depth-first network traversal — and the
// paper's four case-study services on top of it — into ordinary OpenFlow
// 1.3 flow and group entries. A generic match-action pipeline (package
// internal/openflow) executes those rules inside a deterministic
// discrete-event network simulator (package internal/network); nothing
// service-specific runs at packet time, which is the paper's point: the
// data plane stays dumb and formally inspectable, yet can take topology
// snapshots, deliver anycast/priocast messages, detect blackholes and
// packet loss with switch-local smart counters, and decide node
// criticality — all with O(1) controller involvement.
//
// Typical use:
//
//	g := smartsouth.Grid(4, 4)
//	d := smartsouth.Deploy(g, smartsouth.Options{})
//	snap, _ := d.InstallSnapshot()
//	snap.Trigger(0, 0)
//	d.Run()
//	res, _ := snap.Collect() // res.Nodes, res.Edges
package smartsouth

import (
	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/monitor"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/remote"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// Re-exported building blocks. The internal packages carry the full API;
// these aliases are the supported public surface.
type (
	// Graph is a port-numbered undirected topology.
	Graph = topo.Graph
	// Edge is one link with its port numbers on both endpoints.
	Edge = topo.Edge
	// Network is the discrete-event data plane.
	Network = network.Network
	// Controller is the out-of-band control plane.
	Controller = controller.Controller
	// Packet is the unit the OpenFlow pipeline processes.
	Packet = openflow.Packet
	// Time is simulation time in nanoseconds.
	Time = network.Time
	// Hop is one in-band link crossing, as observed by Network.OnHop.
	Hop = network.Hop

	// Snapshot is the §3.1 in-band topology snapshot service.
	Snapshot = core.Snapshot
	// SnapshotSplit is the snapshot variant that splits its report across
	// bounded-size fragments (the §3.1 splitting remark).
	SnapshotSplit = core.SnapshotSplit
	// SnapshotResult is a decoded snapshot.
	SnapshotResult = core.Result
	// Anycast is the §3.2 anycast service.
	Anycast = core.Anycast
	// Priocast is the §3.2 priority-anycast service.
	Priocast = core.Priocast
	// PrioMember is one priocast receiver with its priority.
	PrioMember = core.PrioMember
	// BlackholeTTL is the §3.3 TTL-binary-search blackhole detector.
	BlackholeTTL = core.BlackholeTTL
	// BlackholeCounter is the §3.3 smart-counter blackhole detector.
	BlackholeCounter = core.BlackholeCounter
	// BlackholeReport names a located blackhole.
	BlackholeReport = core.Report
	// PktLoss is the §3.3 packet-loss monitor.
	PktLoss = core.PktLoss
	// LossReport names a directed link with detected loss.
	LossReport = core.LossReport
	// Critical is the §3.4 critical-node service.
	Critical = core.Critical
	// Traversal is the bare SmartSouth template (an in-band liveness
	// sweep).
	Traversal = core.Traversal
	// Chaincast is the §3.2 service-chaining extension (middlebox chains).
	Chaincast = core.Chaincast
	// LoadMap is the §4 load-inference extension built on smart counters.
	LoadMap = core.LoadMap
	// PortLoad identifies a sampled port in a LoadMap report.
	PortLoad = core.PortLoad
	// VerifyIssue is one finding of the static data-plane checker.
	VerifyIssue = verify.Issue
	// ControlPlane is the interface services program against; both the
	// local controller and the TCP fabric implement it.
	ControlPlane = core.ControlPlane
	// Supervisor retries traversals whose trigger packet was lost to a
	// mid-execution failure (the paper's stated limitation).
	Supervisor = core.Supervisor
	// Monitor is the troubleshooting application composing the services:
	// periodic snapshot diffing plus a blackhole watchdog.
	Monitor = monitor.Monitor
	// MonitorEvent is one topology change or silent-failure detection.
	MonitorEvent = monitor.Event
	// Fabric is the OpenFlow-over-TCP control plane (see DeployRemote).
	Fabric = remote.Fabric
	// Program is the declarative install unit every service compiles to:
	// the full set of flow and group entries, per switch, checked before
	// installation and retained by the control plane for accounting.
	Program = openflow.Program
)

// Topology generators.
var (
	Line            = topo.Line
	Ring            = topo.Ring
	Star            = topo.Star
	Tree            = topo.Tree
	Grid            = topo.Grid
	RandomConnected = topo.RandomConnected
	FatTree         = topo.FatTree
	BarabasiAlbert  = topo.BarabasiAlbert
	Waxman          = topo.Waxman
	NewGraph        = topo.NewGraph
)

// Options configures a deployment's simulated network.
type Options = network.Options

// Deployment couples one topology with its simulated network and
// controller, and hands out service slots so several SmartSouth services
// coexist on the same switches.
type Deployment struct {
	Graph *Graph
	Net   *Network
	Ctl   *Controller

	nextSlot int
}

// Deploy builds the network and attaches a controller.
func Deploy(g *Graph, opts Options) *Deployment {
	net := network.New(g, opts)
	return &Deployment{Graph: g, Net: net, Ctl: controller.New(net)}
}

// Run drains the event queue (processing every in-flight packet).
func (d *Deployment) Run() error {
	_, err := d.Net.Run()
	return err
}

// slot reserves the next service slot.
func (d *Deployment) slot() int {
	s := d.nextSlot
	d.nextSlot++
	return s
}

// RemoteDeployment is a deployment whose control plane speaks binary
// OpenFlow 1.3 over real TCP sockets (one session per switch). Services
// are installed with the package-level core installers against the
// Fabric; the data plane is the same simulator either way.
type RemoteDeployment struct {
	Graph  *Graph
	Net    *Network
	Fabric *Fabric

	nextSlot int
}

// DeployRemote builds the network and attaches the TCP control plane.
// Close the deployment when done.
func DeployRemote(g *Graph, opts Options) (*RemoteDeployment, error) {
	net := network.New(g, opts)
	f, err := remote.New(net)
	if err != nil {
		return nil, err
	}
	return &RemoteDeployment{Graph: g, Net: net, Fabric: f}, nil
}

// Slot reserves the next service slot for use with the core installers.
func (d *RemoteDeployment) Slot() int {
	s := d.nextSlot
	d.nextSlot++
	return s
}

// InstallSnapshot installs the snapshot service over the wire.
func (d *RemoteDeployment) InstallSnapshot() (*Snapshot, error) {
	return core.InstallSnapshot(d.Fabric, d.Graph, d.Slot())
}

// InstallAnycast installs the anycast service over the wire.
func (d *RemoteDeployment) InstallAnycast(groups map[uint32][]int) (*Anycast, error) {
	return core.InstallAnycast(d.Fabric, d.Graph, d.Slot(), groups)
}

// InstallCritical installs the critical-node service over the wire.
func (d *RemoteDeployment) InstallCritical() (*Critical, error) {
	return core.InstallCritical(d.Fabric, d.Graph, d.Slot())
}

// InstallBlackholeCounter installs the smart-counter detector over the
// wire.
func (d *RemoteDeployment) InstallBlackholeCounter() (*BlackholeCounter, error) {
	return core.InstallBlackholeCounter(d.Fabric, d.Graph, d.Slot())
}

// Run synchronises all sessions and processes the data plane.
func (d *RemoteDeployment) Run() error {
	_, err := d.Fabric.RunNetwork()
	return err
}

// Programs returns the installed programs the fabric retains.
func (d *RemoteDeployment) Programs() []*Program {
	return d.Fabric.Programs()
}

// ConfigBytes sums the rule-space footprint over all retained programs.
func (d *RemoteDeployment) ConfigBytes() int {
	total := 0
	for _, p := range d.Fabric.Programs() {
		total += p.Bytes()
	}
	return total
}

// Close tears down the TCP sessions.
func (d *RemoteDeployment) Close() { d.Fabric.Close() }

// InstallTraversal installs the bare template.
func (d *Deployment) InstallTraversal() (*Traversal, error) {
	return core.InstallTraversal(d.Ctl, d.Graph, d.slot())
}

// InstallSnapshot installs the topology snapshot service.
func (d *Deployment) InstallSnapshot() (*Snapshot, error) {
	return core.InstallSnapshot(d.Ctl, d.Graph, d.slot())
}

// InstallSnapshotSplit installs the splitting snapshot with the given
// per-fragment record budget.
func (d *Deployment) InstallSnapshotSplit(budget int) (*SnapshotSplit, error) {
	return core.InstallSnapshotSplit(d.Ctl, d.Graph, d.slot(), budget)
}

// InstallAnycast installs the anycast service with the given groups
// (group id -> member switches).
func (d *Deployment) InstallAnycast(groups map[uint32][]int) (*Anycast, error) {
	return core.InstallAnycast(d.Ctl, d.Graph, d.slot(), groups)
}

// InstallPriocast installs the priocast service with the given groups.
func (d *Deployment) InstallPriocast(groups map[uint32][]PrioMember) (*Priocast, error) {
	return core.InstallPriocast(d.Ctl, d.Graph, d.slot(), groups)
}

// InstallBlackholeTTL installs the TTL-probing blackhole detector.
func (d *Deployment) InstallBlackholeTTL() (*BlackholeTTL, error) {
	return core.InstallBlackholeTTL(d.Ctl, d.Graph, d.slot())
}

// InstallBlackholeCounter installs the smart-counter blackhole detector.
func (d *Deployment) InstallBlackholeCounter() (*BlackholeCounter, error) {
	return core.InstallBlackholeCounter(d.Ctl, d.Graph, d.slot())
}

// InstallPktLoss installs the packet-loss monitor (nil primes selects
// core.DefaultPrimes).
func (d *Deployment) InstallPktLoss(primes []int) (*PktLoss, error) {
	return core.InstallPktLoss(d.Ctl, d.Graph, d.slot(), primes)
}

// InstallCritical installs the critical-node service.
func (d *Deployment) InstallCritical() (*Critical, error) {
	return core.InstallCritical(d.Ctl, d.Graph, d.slot())
}

// InstallChaincast installs the service-chaining extension over the given
// ordered middlebox groups (one service slot per stage).
func (d *Deployment) InstallChaincast(chain [][]int) (*Chaincast, error) {
	base := d.nextSlot
	cc, err := core.InstallChaincast(d.Ctl, d.Graph, base, chain)
	if err != nil {
		return nil, err
	}
	d.nextSlot = base + cc.NumSlots()
	return cc, nil
}

// InstallLoadMap installs the load-inference extension. It owns the
// EthData ingress rules, so it cannot share a deployment with PktLoss.
func (d *Deployment) InstallLoadMap() (*LoadMap, error) {
	return core.InstallLoadMap(d.Ctl, d.Graph, d.slot())
}

// InstallMonitor installs the troubleshooting monitor (snapshot diffing
// from root; optional blackhole watchdog). It consumes two service slots.
func (d *Deployment) InstallMonitor(root int, watchdog bool) (*Monitor, error) {
	base := d.nextSlot
	m, err := monitor.New(d.Ctl, d.Graph, base, root, watchdog)
	if err != nil {
		return nil, err
	}
	d.nextSlot = base + 2
	return m, nil
}

// Uninstall removes every flow and group entry belonging to a service
// slot (its table block, its group-ID range, and the table-0 dispatcher
// rules steering into it) from all switches — flow-mod/group-mod DELETEs
// in OpenFlow terms. Other services keep running; the slot is NOT reused
// by future installs.
func (d *Deployment) Uninstall(slot int) {
	tLo, tHi := 1+slot*10, 1+(slot+1)*10
	gLo, gHi := uint32(slot)<<20, uint32(slot+1)<<20
	for i := 0; i < d.Net.NumSwitches(); i++ {
		sw := d.Net.Switch(i)
		for t := tLo; t < tHi; t++ {
			sw.ClearTable(t)
		}
		sw.Table(0).RemoveIf(func(e *openflow.FlowEntry) bool {
			return e.Goto >= tLo && e.Goto < tHi
		})
		sw.RemoveGroupRange(gLo, gHi)
	}
	d.Ctl.DropPrograms(slot)
}

// Programs returns the installed programs the controller retains — the
// declarative record of every service's rule footprint.
func (d *Deployment) Programs() []*Program {
	return d.Ctl.Programs()
}

// VerifyPrograms re-runs the pre-install static check over every retained
// program. Installation already enforces it; this re-checks the recorded
// intent (e.g. after topology or code changes) without touching switches.
func (d *Deployment) VerifyPrograms() []VerifyIssue {
	var all []VerifyIssue
	for _, p := range d.Ctl.Programs() {
		all = append(all, verify.CheckProgram(p, verify.Options{})...)
	}
	return all
}

// Verify statically checks the installed configuration of every switch
// and returns all findings (see internal/verify for the property list).
func (d *Deployment) Verify() []VerifyIssue {
	var all []VerifyIssue
	for i := 0; i < d.Net.NumSwitches(); i++ {
		all = append(all, verify.Switch(d.Net.Switch(i), verify.Options{})...)
	}
	return all
}

// VerifyErrors returns only Err-severity findings from Verify.
func (d *Deployment) VerifyErrors() []VerifyIssue {
	return verify.Errors(d.Verify())
}

// OnDeliver registers a callback for packets delivered to a switch-local
// host (the SELF port) — e.g. anycast receivers.
func (d *Deployment) OnDeliver(fn func(sw int, pkt *Packet)) {
	d.Net.OnSelf = fn
}

// ConfigBytes sums the modelled hardware footprint (flow + group entries)
// over all retained programs — the rule-space metric of the scalability
// claim, read off the declarative record rather than by walking switches.
func (d *Deployment) ConfigBytes() int {
	total := 0
	for _, p := range d.Ctl.Programs() {
		total += p.Bytes()
	}
	return total
}

// FlowEntries sums flow entries over all retained programs.
func (d *Deployment) FlowEntries() int {
	total := 0
	for _, p := range d.Ctl.Programs() {
		total += p.FlowCount()
	}
	return total
}

// GroupEntries sums group entries over all retained programs.
func (d *Deployment) GroupEntries() int {
	total := 0
	for _, p := range d.Ctl.Programs() {
		total += p.GroupCount()
	}
	return total
}
