package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func mustParseFixture(t *testing.T) []Result {
	t.Helper()
	f, err := os.Open("testdata/bench_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rs, err := ParseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func loadFixtureBaseline(t *testing.T) Baseline {
	t.Helper()
	data, err := os.ReadFile("testdata/baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBench(t *testing.T) {
	rs := mustParseFixture(t)
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rs), rs)
	}
	first := rs[0]
	if first.Name != "BenchmarkTable2Snapshot/n=20" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Package != "smartsouth" || first.NsOp != 70100 || first.AllocsOp != 0 {
		t.Fatalf("first result wrong: %+v", first)
	}
	if rs[2].Name != "BenchmarkBrandNew" || rs[2].AllocsOp != 1 {
		t.Fatalf("allocs not parsed: %+v", rs[2])
	}
	last := rs[3]
	if last.Package != "smartsouth/internal/network" || last.NsOp != 260.5 {
		t.Fatalf("pkg tracking or fractional ns/op wrong: %+v", last)
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	comps := Compare(loadFixtureBaseline(t).Benchmarks, mustParseFixture(t), 1.2, 1.0)
	// BrandNew has no baseline, Retired/DocOnly were not measured: 3 rows.
	if len(comps) != 3 {
		t.Fatalf("compared %d, want 3: %+v", len(comps), comps)
	}
	for _, c := range comps {
		if c.Regressed {
			t.Fatalf("unexpected regression: %+v", c)
		}
		if c.Ratio < 0.9 || c.Ratio > 1.2 {
			t.Fatalf("ratio out of expected band: %+v", c)
		}
	}
}

func TestCompareSyntheticRegression(t *testing.T) {
	comps := Compare(loadFixtureBaseline(t).Benchmarks, mustParseFixture(t), 1.2, 2.0)
	regressed := 0
	for _, c := range comps {
		if c.Regressed {
			regressed++
		}
	}
	if regressed != len(comps) || regressed == 0 {
		t.Fatalf("a 2x scale must regress every compared benchmark: %+v", comps)
	}
	// Sorted worst-first.
	for i := 1; i < len(comps); i++ {
		if comps[i].Ratio > comps[i-1].Ratio {
			t.Fatalf("comparisons not sorted by ratio: %+v", comps)
		}
	}
}

func TestCompareNameOnlyFallback(t *testing.T) {
	base := []Result{{Name: "BenchmarkLinkCrossing", NsOp: 255}} // no package
	comps := Compare(base, mustParseFixture(t), 1.2, 1.0)
	if len(comps) != 1 || comps[0].Name != "BenchmarkLinkCrossing" {
		t.Fatalf("name-only baseline must still match: %+v", comps)
	}
}

func TestComparePrefixFallback(t *testing.T) {
	// A benchmark that grew a sub-benchmark dimension since the baseline
	// must still gate against the old row under its longest matching
	// prefix — but only at "/" boundaries, never by raw string prefix.
	base := []Result{
		{Name: "BenchmarkTable2Snapshot/n=20", Package: "smartsouth", NsOp: 100},
		{Name: "BenchmarkLinkCrossing", Package: "smartsouth/internal/network", NsOp: 255},
	}
	measured := []Result{
		{Name: "BenchmarkTable2Snapshot/n=20/E=29", Package: "smartsouth", NsOp: 150},
		{Name: "BenchmarkLinkCrossingTelemetry", Package: "smartsouth/internal/network", NsOp: 600},
	}
	comps := Compare(base, measured, 1.2, 1.0)
	if len(comps) != 1 {
		t.Fatalf("want exactly the stripped-suffix match, got %+v", comps)
	}
	c := comps[0]
	if c.Name != "BenchmarkTable2Snapshot/n=20/E=29" || c.BaselineNs != 100 || !c.Regressed {
		t.Fatalf("prefix fallback mismatched: %+v", c)
	}
}

func TestCompareIgnoresUnmeasuredBaselineRows(t *testing.T) {
	// DocOnly has no after_ns_op; a measured result named like it must not
	// divide by zero or match.
	base := loadFixtureBaseline(t).Benchmarks
	measured := []Result{{Name: "BenchmarkDocOnly", Package: "smartsouth", NsOp: 100}}
	if comps := Compare(base, measured, 1.2, 1.0); len(comps) != 0 {
		t.Fatalf("documentation rows must not gate: %+v", comps)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	// A baseline emitted from measured results must parse back and gate.
	measured := mustParseFixture(t)
	js, err := json.Marshal(Baseline{Benchmarks: measured})
	if err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	comps := Compare(back.Benchmarks, measured, 1.2, 1.0)
	if len(comps) != len(measured) {
		t.Fatalf("round-tripped baseline compared %d of %d", len(comps), len(measured))
	}
	for _, c := range comps {
		if c.Ratio != 1.0 || c.Regressed {
			t.Fatalf("self-comparison must be exactly 1.0x: %+v", c)
		}
	}
}

func TestParseBenchRejectsNothing(t *testing.T) {
	rs, err := ParseBench(strings.NewReader("PASS\nok\tsmartsouth\t1.0s\n"))
	if err != nil || len(rs) != 0 {
		t.Fatalf("non-benchmark output: %v %v", rs, err)
	}
}
