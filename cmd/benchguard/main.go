// benchguard is the performance regression gate: it reads `go test
// -bench` output, compares every benchmark against a committed baseline
// (BENCH_*.json) and exits non-zero when any ns/op regresses past the
// threshold. CI pipes the benchmark run straight through it:
//
//	go test -bench . -benchmem ./... | benchguard -baseline BENCH_pr3.json -out BENCH_pr5.json
//
// Exit codes: 0 all benchmarks within threshold, 1 regression found,
// 2 usage or parse error. -scale multiplies the measured ns/op before
// comparing — `-scale 2.0` fakes a 2x regression, which CI uses as the
// negative test that the gate actually fires.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	baselinePath = flag.String("baseline", "", "baseline BENCH_*.json to compare against (required)")
	inPath       = flag.String("in", "", "benchmark output to read (default stdin)")
	outPath      = flag.String("out", "", "write the measured results as a new baseline JSON")
	threshold    = flag.Float64("threshold", 1.2, "fail when measured ns/op exceeds baseline by this factor")
	scale        = flag.Float64("scale", 1.0, "multiply measured ns/op before comparing (synthetic regression for testing the gate)")
	verbose      = flag.Bool("v", false, "print every comparison, not just regressions")
)

// Result is one measured benchmark.
type Result struct {
	Name     string  `json:"name"`
	Package  string  `json:"package,omitempty"`
	NsOp     float64 `json:"after_ns_op"`
	AllocsOp int64   `json:"after_allocs_op,omitempty"`
}

// RatioSpec gates a relationship between two measured rows rather than a
// row against its own past: the run fails when NsOp(Numerator) /
// NsOp(Denominator) drops below Min. The shard scaling curve commits its
// floor this way — the 1-shard-over-4-shard wall-clock ratio (the 4-shard
// speedup) may not fall below the committed machine floor, which catches
// the sharded engine's overhead growing even on runners where core count
// caps the achievable speedup. The -scale knob deliberately does not
// apply: it would cancel out of a ratio anyway.
type RatioSpec struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Min         float64 `json:"min"`
}

// Baseline is the committed BENCH_*.json shape. Only name, package,
// after_ns_op and the ratio specs matter to the gate; the rest is
// documentation.
type Baseline struct {
	PR         int         `json:"pr,omitempty"`
	Title      string      `json:"title,omitempty"`
	Machine    string      `json:"machine,omitempty"`
	Method     string      `json:"method,omitempty"`
	Benchmarks []Result    `json:"benchmarks"`
	Ratios     []RatioSpec `json:"ratios,omitempty"`
}

// CheckRatios evaluates the baseline's ratio specs against the measured
// rows (matched by name, ignoring package: ratio rows are unique across
// the suite). A spec whose rows were not measured in this invocation is
// skipped — benchguard is piped arbitrary benchmark subsets — and
// reported as such, so a CI leg that should have produced the rows
// cannot silently stop gating them.
func CheckRatios(specs []RatioSpec, measured []Result) (failures int) {
	byName := map[string]float64{}
	for _, m := range measured {
		byName[m.Name] = m.NsOp
	}
	for _, r := range specs {
		num, nok := byName[r.Numerator]
		den, dok := byName[r.Denominator]
		if !nok || !dok || den == 0 {
			fmt.Printf("ratio %-40s skipped (rows not in this run)\n", r.Name)
			continue
		}
		ratio := num / den
		if ratio < r.Min {
			failures++
			fmt.Printf("RATIO REGRESSION %-30s %s / %s = %.2f  (min %.2f)\n",
				r.Name, r.Numerator, r.Denominator, ratio, r.Min)
		} else {
			fmt.Printf("ratio ok   %-40s %.2f >= %.2f\n", r.Name, ratio, r.Min)
		}
	}
	return failures
}

// gomaxprocsSuffix is the trailing "-N" go test appends to benchmark
// names; it varies with the machine and must not affect matching.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// ParseBench extracts benchmark results from `go test -bench` output,
// tracking `pkg:` headers so each result is package-qualified.
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		res := Result{
			Name:    gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Package: pkg,
			NsOp:    ns,
		}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			res.AllocsOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// Comparison is the verdict for one benchmark present in both runs.
type Comparison struct {
	Name       string
	Package    string
	BaselineNs float64
	MeasuredNs float64 // after -scale
	Ratio      float64
	Regressed  bool
}

// Compare matches measured results against the baseline by package+name
// (falling back to name alone, so a baseline without package fields still
// gates) and flags every ratio above threshold. A measured name with no
// baseline row is retried with trailing "/..." sub-benchmark segments
// stripped, so a benchmark that grew a dimension since the baseline (e.g.
// BenchmarkTable2Snapshot/n=20/E=29 vs a committed
// BenchmarkTable2Snapshot/n=20) still gates against the old row.
// Benchmarks new since the baseline pass unconditionally; they have
// nothing to regress from.
func Compare(baseline []Result, measured []Result, threshold, scale float64) []Comparison {
	byKey := map[string]Result{}
	byName := map[string]Result{}
	for _, b := range baseline {
		if b.NsOp <= 0 {
			continue // baseline rows without an after_ns_op are documentation
		}
		byKey[b.Package+" "+b.Name] = b
		byName[b.Name] = b
	}
	lookup := func(pkg, name string) (Result, bool) {
		if b, ok := byKey[pkg+" "+name]; ok {
			return b, true
		}
		b, ok := byName[name]
		return b, ok
	}
	var out []Comparison
	for _, m := range measured {
		b, ok := lookup(m.Package, m.Name)
		for name := m.Name; !ok; {
			i := strings.LastIndexByte(name, '/')
			if i < 0 {
				break
			}
			name = name[:i]
			b, ok = lookup(m.Package, name)
		}
		if !ok {
			continue
		}
		got := m.NsOp * scale
		ratio := got / b.NsOp
		out = append(out, Comparison{
			Name: m.Name, Package: m.Package,
			BaselineNs: b.NsOp, MeasuredNs: got, Ratio: ratio,
			Regressed: ratio > threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

func main() {
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := ParseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark results in input")
		os.Exit(2)
	}

	if *outPath != "" {
		doc := Baseline{
			Method:     "after_ns_op from one `go test -bench` run, recorded by benchguard",
			Benchmarks: measured,
		}
		js, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(js, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: wrote %d results to %s\n", len(measured), *outPath)
	}

	comps := Compare(base.Benchmarks, measured, *threshold, *scale)
	regressions := CheckRatios(base.Ratios, measured)
	for _, c := range comps {
		if c.Regressed {
			regressions++
			fmt.Printf("REGRESSION %-50s %10.0f -> %10.0f ns/op  (%.2fx > %.2fx)\n",
				c.Name, c.BaselineNs, c.MeasuredNs, c.Ratio, *threshold)
		} else if *verbose {
			fmt.Printf("ok         %-50s %10.0f -> %10.0f ns/op  (%.2fx)\n",
				c.Name, c.BaselineNs, c.MeasuredNs, c.Ratio)
		}
	}
	fmt.Printf("benchguard: %d measured, %d compared against %s, %d regression(s), threshold %.2fx\n",
		len(measured), len(comps), *baselinePath, regressions, *threshold)
	if regressions > 0 {
		os.Exit(1)
	}
}
