// oflint statically analyzes compiled SmartSouth programs against a
// topology, without a controller or a simulator: cross-service conflicts
// (overlapping matches, shadowing, slot/cookie/group collisions),
// symbolic reachability defects (forwarding loops, blackholes, dead
// rules) and, on request, the DFS traversal invariant.
//
// Programs are JSON dumps of the Program IR (internal/dump); produce
// them with `smartsouth -programs out.json` or by hand. The topology is
// either a generator spec or a JSON file:
//
//	oflint -topo ring:20 programs.json
//	oflint -topo topo.json -json -dead svc1.json svc2.json
//	oflint -topo line:4 -prove-dfs snapshot programs.json
//
// Exit status: 0 clean (warnings allowed), 1 usage/load error, 2 when
// any error-severity finding is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smartsouth/internal/analysis"
	"smartsouth/internal/core"
	"smartsouth/internal/dump"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

var (
	topoSpec = flag.String("topo", "", "topology: generator spec (ring:20, line:5, star:8, tree:2x3, grid:4x4) or a JSON file")
	jsonOut  = flag.Bool("json", false, "print findings as JSON instead of text")
	dead     = flag.Bool("dead", false, "also report symbolically unreachable (dead) rules")
	proveDFS = flag.String("prove-dfs", "", "additionally prove the DFS traversal invariant for this service")
	maxState = flag.Int("max-states", 0, "symbolic state budget (0 = default)")
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oflint: "+format+"\n", args...)
	os.Exit(1)
}

// parseTopo turns a -topo argument into a graph. A value naming an
// existing file (or ending in .json) is loaded as JSON; otherwise it is
// a generator spec name:size.
func parseTopo(spec string) (*topo.Graph, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing -topo")
	}
	if _, err := os.Stat(spec); err == nil || strings.HasSuffix(spec, ".json") {
		raw, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		var g topo.Graph
		if err := json.Unmarshal(raw, &g); err != nil {
			return nil, fmt.Errorf("%s: %w", spec, err)
		}
		return &g, nil
	}
	name, arg, _ := strings.Cut(spec, ":")
	dims := strings.Split(arg, "x")
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			fail("bad topology spec %q", spec)
		}
		return n
	}
	switch name {
	case "line":
		return topo.Line(atoi(arg)), nil
	case "ring":
		return topo.Ring(atoi(arg)), nil
	case "star":
		return topo.Star(atoi(arg)), nil
	case "tree":
		if len(dims) == 2 {
			return topo.Tree(atoi(dims[0]), atoi(dims[1])), nil
		}
		return topo.Tree(atoi(arg), 2), nil
	case "grid":
		if len(dims) == 2 {
			return topo.Grid(atoi(dims[0]), atoi(dims[1])), nil
		}
		return nil, fmt.Errorf("grid spec wants grid:RxC, got %q", spec)
	}
	return nil, fmt.Errorf("unknown topology spec %q (and no such file)", spec)
}

func loadPrograms(paths []string) ([]*openflow.Program, error) {
	var progs []*openflow.Program
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ps, err := dump.UnmarshalPrograms(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		progs = append(progs, ps...)
	}
	return progs, nil
}

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fail("no program files given (usage: oflint -topo ring:20 programs.json...)")
	}
	g, err := parseTopo(*topoSpec)
	if err != nil {
		fail("%v", err)
	}
	progs, err := loadPrograms(flag.Args())
	if err != nil {
		fail("%v", err)
	}

	opts := analysis.Options{
		HostEthTypes:    []uint16{core.EthData},
		SlotTables:      core.SlotTables,
		SlotGroups:      core.SlotGroups,
		ReportDeadRules: *dead,
		MaxStates:       *maxState,
	}
	findings := analysis.CheckDeployment(progs, g, opts)

	if *proveDFS != "" {
		var target *openflow.Program
		for _, p := range progs {
			if p.Service == *proveDFS {
				target = p
				break
			}
		}
		if target == nil {
			fail("no program named %q among the loaded files", *proveDFS)
		}
		findings = append(findings, analysis.ProveDFS(target, g, opts)...)
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{} // clean run prints [], not null
		}
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(out))
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("oflint: %d programs on %d switches: %d findings (%d errors, %d warnings)\n",
			len(progs), g.NumNodes(), len(findings),
			len(analysis.Errors(findings)), len(analysis.Warnings(findings)))
	}
	for _, f := range findings {
		if f.Severity == verify.Err {
			os.Exit(2)
		}
	}
}
