// benchtable regenerates the paper's evaluation: Table 2 (out-of-band and
// in-band message complexity of every SmartSouth service) plus the
// numbered claims (tag size, rule space / "few hundred nodes", failover,
// packet-loss false negatives, and the control-load comparison against
// out-of-band baselines). Paper formulas are printed next to measured
// values from the simulator.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"smartsouth"
	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

var (
	sizes    = flag.String("sizes", "20,60,120,240", "comma-separated network sizes")
	topoName = flag.String("topo", "random", "topology family: random|grid|fattree|ba|waxman")
	parallel = flag.Int("parallel", 1, "worker count for the Table 2 sweep; 0 = GOMAXPROCS, >1 also reports the wall-clock speedup vs sequential")
	backend  = flag.String("backend", "of13", "compile backend for the per-size tables: of13 or stateful (the backend matrix always measures both)")
	shards   = flag.Int("shards", 1, "event-loop shard count for every deployment; >1 also prints the shard-count scaling curve")
	timeline = flag.String("timeline", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) of one traced snapshot run — largest -sizes graph, -shards shards — to this path")
)

// deploy builds a deployment with the -backend and -shards flags applied.
func deploy(g *topo.Graph) *smartsouth.Deployment {
	return smartsouth.Deploy(g, smartsouth.WithBackend(*backend), smartsouth.WithShards(*shards))
}

func parseSizes() []int {
	var out []int
	v := 0
	for _, c := range *sizes + "," {
		if c >= '0' && c <= '9' {
			v = v*10 + int(c-'0')
		} else if v > 0 {
			out = append(out, v)
			v = 0
		}
	}
	return out
}

func graph(n int) *topo.Graph {
	switch *topoName {
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return topo.Grid(side, (n+side-1)/side)
	case "fattree":
		k := 2
		for 5*k*k/4 < n {
			k += 2
		}
		g, err := topo.FatTree(k)
		must(err)
		return g
	case "ba":
		return topo.BarabasiAlbert(n, 2, int64(n))
	case "waxman":
		return topo.Waxman(n, 0.4, 0.2, int64(n))
	default:
		return topo.RandomConnected(n, n/2, int64(n))
	}
}

func sweep(g *topo.Graph) int { return 4*g.NumEdges() - 2*g.NumNodes() + 2 }

type row struct {
	service     string
	n, e        int
	outPaper    string
	outMeasured int
	inPaper     string
	inMeasured  int
}

func main() {
	flag.Parse()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	fmt.Fprintf(w, "== Topology family: %s ==\n", *topoName)
	fmt.Fprintln(w, "n\tE\tdegree min/mean/max\tdiameter")
	for _, n := range parseSizes() {
		m := topo.Measure(graph(n))
		fmt.Fprintf(w, "%d\t%d\t%d/%.1f/%d\t%d\n", m.Nodes, m.Edges, m.MinDegree, m.MeanDegree, m.MaxDegree, m.Diameter)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== Table 2: SmartSouth service complexities (paper formula vs measured) ==")
	fmt.Fprintln(w, "service\tn\tE\tout-band paper\tout-band meas.\tin-band paper\tin-band meas.")
	ns := parseSizes()
	rowsBySize := make([][]row, len(ns))
	runTable2 := func(workers int) time.Duration {
		start := time.Now()
		// Each job deploys on its own graph and network; they share no
		// state, which is what lets network.Sweep fan them out.
		must(network.Sweep(len(ns), workers, func(i int) error {
			rowsBySize[i] = measureAll(graph(ns[i]))
			return nil
		}))
		return time.Since(start)
	}
	seqElapsed := runTable2(1)
	var parElapsed time.Duration
	if *parallel != 1 {
		parElapsed = runTable2(*parallel)
	}
	for _, rs := range rowsBySize {
		for _, r := range rs {
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%s\t%d\n",
				r.service, r.n, r.e, r.outPaper, r.outMeasured, r.inPaper, r.inMeasured)
		}
	}
	w.Flush()
	if *parallel != 1 {
		fmt.Printf("(table 2 sweep: sequential %v, parallel[%d workers] %v, speedup %.2fx)\n",
			seqElapsed.Round(time.Millisecond), *parallel,
			parElapsed.Round(time.Millisecond),
			float64(seqElapsed)/float64(parElapsed))
	}

	metricsTable()
	backendMatrixTable()
	latencyTable()
	tagSizeTable()
	ruleSpaceTable()
	// The failover claims measure OpenFlow fast-failover groups; the
	// stateful lowering replaces groups with state tables and a static
	// port scan, which has no port-liveness sensing to measure.
	if *backend != "stateful" {
		failoverTable()
		midFailureTable()
	} else {
		fmt.Println("\n(failover and mid-failure tables skipped: fast-failover is an of13 group primitive)")
	}
	pktLossTable()
	baselineTable()
	if *shards > 1 {
		shardScalingTable()
	}
	if *timeline != "" {
		writeTimeline(*timeline)
	}
}

// writeTimeline runs one causally-traced snapshot traversal on the
// largest configured graph with the configured shard count and writes
// the resulting span timeline as Chrome trace-event JSON — the artifact
// CI validates and operators drop into Perfetto.
func writeTimeline(path string) {
	sz := parseSizes()
	g := graph(sz[len(sz)-1])
	d := smartsouth.Deploy(g, smartsouth.WithBackend(*backend),
		smartsouth.WithShards(*shards), smartsouth.WithTimeline(1<<14))
	snap, err := d.InstallSnapshot()
	must(err)
	snap.Trigger(0, 0)
	must(d.Run())
	f, err := os.Create(path)
	must(err)
	must(d.WriteTimeline(f))
	must(f.Close())
	spans, cross := 0, 0
	complete := 0
	traces := d.Traces()
	for _, t := range traces {
		spans += t.Spans
		cross += t.CrossLane
		if t.Complete {
			complete++
		}
	}
	fmt.Printf("\n== Causal timeline: %s n=%d, %d shard(s) -> %s ==\n",
		*topoName, g.NumNodes(), d.Net.Shards(), path)
	fmt.Printf("(%d trace(s), %d complete, %d spans, %d cross-shard edges)\n",
		len(traces), complete, spans, cross)
}

// shardScalingTable prints the shard-count scaling curve: wall-clock of a
// burst of concurrent splitting-snapshot traversals on the largest
// configured graph, for shard counts 1, 2, 4, ... up to -shards. The
// burst always uses the OF13 lowering regardless of -backend: it carries
// the DFS state in the packet tag, so the traversals are mutually
// independent and the burst can actually spread across shard workers.
// Every Table-2 counter is asserted shard-invariant along the way; the
// wall-clock column only shows a speedup when GOMAXPROCS > 1.
func shardScalingTable() {
	sz := parseSizes()
	g := graph(sz[len(sz)-1])
	const triggers = 32
	fmt.Printf("\n== Shard-count scaling curve: %s n=%d, %d concurrent sweeps, GOMAXPROCS=%d ==\n",
		*topoName, g.NumNodes(), triggers, runtime.GOMAXPROCS(0))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\twall-clock\tspeedup vs 1\tin-band msgs\tfragments")
	var base time.Duration
	wantMsgs := -1
	for s := 1; s <= *shards; s *= 2 {
		net := network.New(g, network.Options{Shards: s})
		c := controller.New(net)
		sp, err := core.InstallSnapshotSplit(c, g, 0, 16)
		must(err)
		start := time.Now()
		for t := 0; t < triggers; t++ {
			sp.Trigger((t*37)%g.NumNodes(), network.Time(t)*50)
		}
		must2(net.Run())
		elapsed := time.Since(start)
		msgs := net.InBandCount(core.EthSnapSplit)
		if msgs == 0 || msgs > triggers*(4*g.NumEdges()) {
			log.Fatalf("scaling curve: %d shards used %d in-band msgs, per-sweep bound 4|E|=%d", s, msgs, 4*g.NumEdges())
		}
		if wantMsgs == -1 {
			base, wantMsgs = elapsed, msgs
		} else if msgs != wantMsgs {
			log.Fatalf("scaling curve: %d shards saw %d in-band msgs, single loop %d — shard invariance broken", s, msgs, wantMsgs)
		}
		frags := 0
		for _, pi := range c.Inbox() {
			if pi.Pkt.EthType == core.EthSnapSplit {
				frags++
			}
		}
		fmt.Fprintf(w, "%d\t%v\t%.2fx\t%d\t%d\n",
			s, elapsed.Round(time.Millisecond), float64(base)/float64(elapsed), msgs, frags)
	}
	w.Flush()
	fmt.Println("(in-band counters are asserted shard-invariant; wall-clock speedup requires GOMAXPROCS > 1)")
}

// metricsTable cross-checks Table 2 against the per-service metrics
// registry: snapshot, anycast and critical share ONE Ring(20) deployment,
// and their in-band counts are separated purely by the registry's
// per-EtherType attribution — then compared against the paper's 4E-2n+2
// sweep prediction. Snapshot and critical (non-critical node) must agree
// exactly; worst-case anycast is bounded by the sweep.
func metricsTable() {
	fmt.Println("\n== Table 2 via the metrics registry: one shared Ring(20) deployment ==")
	g := topo.Ring(20)
	pred := sweep(g) // 4E-2n+2 = 42 on Ring(20)

	d := deploy(g)
	snap, err := d.InstallSnapshot()
	must(err)
	golden := topo.GoldenDFS(g, 0, topo.Never, topo.Never)
	last := golden.FirstVisits[len(golden.FirstVisits)-1]
	any, err := d.InstallAnycast(map[uint32][]int{1: {last}})
	must(err)
	cr, err := d.InstallCritical()
	must(err)

	snap.Trigger(0, 0)
	any.Send(0, 1, nil, 0)
	cr.Check(0, 0) // ring: no articulation points, full sweep
	must(d.Run())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "service\tin-band predicted\tin-band measured\tagree\ttrig\tpktins\twallclock (µs)")
	bad := 0
	for _, m := range d.MetricsSnapshot() {
		var want string
		var ok bool
		switch m.Service {
		case "snapshot", "critical":
			want, ok = fmt.Sprintf("4E-2n+2=%d", pred), m.InBandMsgs == pred
		case "anycast":
			want, ok = fmt.Sprintf("<=%d", pred), m.InBandMsgs <= pred && m.InBandMsgs > 0
		default:
			continue
		}
		if !ok {
			bad++
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%d\t%d\t%d\n",
			m.Service, want, m.InBandMsgs, ok, m.TriggerPackets, m.PacketIns, m.WallClock/1000)
	}
	w.Flush()
	if bad > 0 {
		log.Fatalf("metrics cross-check: %d service(s) disagree with the Table 2 prediction", bad)
	}
	fmt.Println("(measured from ServiceMetrics of one deployment; attribution is per EtherType)")
}

// backendMatrixTable prints the two-backend Table 2 extension: every
// service compiled from its one definition by both backends on one
// Ring(20), with the installed rule space (flow entries, groups,
// state-table transitions), the packet tag the lowering needs, the
// in-band message count of one run, and the controller's runtime share
// (packet-ins plus post-install flow-mods). The stateful XFSM lowering
// must strictly shrink the rule space for at least three services, and
// port knocking is the headline: the OF13 row needs the controller for
// every knock, the stateful row none.
func backendMatrixTable() {
	fmt.Println("\n== Table 2 across compile backends: one definition, two lowerings (Ring(20)) ==")
	g := topo.Ring(20)

	type svc struct {
		name    string
		install func(d *smartsouth.Deployment) (run func(d *smartsouth.Deployment), eths []uint16)
	}
	svcs := []svc{
		{"snapshot", func(d *smartsouth.Deployment) (func(d *smartsouth.Deployment), []uint16) {
			s, err := d.InstallSnapshot()
			must(err)
			return func(d *smartsouth.Deployment) {
				s.Trigger(0, 0)
				must(d.Run())
			}, []uint16{core.EthSnapshot}
		}},
		{"anycast", func(d *smartsouth.Deployment) (func(d *smartsouth.Deployment), []uint16) {
			a, err := d.InstallAnycast(map[uint32][]int{1: {10}})
			must(err)
			return func(d *smartsouth.Deployment) {
				a.Send(0, 1, nil, 0)
				must(d.Run())
			}, []uint16{core.EthAnycast}
		}},
		{"critical", func(d *smartsouth.Deployment) (func(d *smartsouth.Deployment), []uint16) {
			cr, err := d.InstallCritical()
			must(err)
			return func(d *smartsouth.Deployment) {
				cr.Check(0, 0)
				must(d.Run())
			}, []uint16{core.EthCritical}
		}},
		{"blackhole-2", func(d *smartsouth.Deployment) (func(d *smartsouth.Deployment), []uint16) {
			b, err := d.InstallBlackholeCounter()
			must(err)
			return func(d *smartsouth.Deployment) {
				b.Detect(0, 0, 0)
				must(d.Run())
			}, []uint16{core.EthBlackhole, core.EthBlackholeChk}
		}},
		{"portknock", func(d *smartsouth.Deployment) (func(d *smartsouth.Deployment), []uint16) {
			pk, err := d.InstallPortKnock(10, []uint32{3, 1, 4})
			must(err)
			return func(d *smartsouth.Deployment) {
				pk.Knock(0, 7, 3, 0)
				pk.Knock(0, 7, 1, 10_000)
				pk.Knock(0, 7, 4, 20_000)
				must(d.Run())
				pk.Process() // OF13 controller assist; no-op under stateful
				pk.SendData(0, 7, []byte("guarded"), d.Net.Sim.Now()+1)
				must(d.Run())
				if !pk.Open(7) {
					log.Fatal("backend matrix: knock sequence did not open the port")
				}
			}, []uint16{core.EthKnock, core.EthGuarded}
		}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "service\tbackend\tflows\tgroups\tstate entries\ttotal rules\ttag bytes\tin-band msgs\tctl pkt-ins\tlate flow-mods")
	shrunk := 0
	for _, s := range svcs {
		var total [2]int
		for i, be := range []string{"of13", "stateful"} {
			d := smartsouth.Deploy(g, smartsouth.WithBackend(be))
			run, eths := s.install(d)
			modsAfterInstall := d.Ctl.Stats.FlowMods
			run(d)
			inband := 0
			for _, eth := range eths {
				inband += d.Net.InBandCount(eth)
			}
			tag := 0
			for _, p := range d.Programs() {
				if p.TagBytes > tag {
					tag = p.TagBytes
				}
			}
			total[i] = d.FlowEntries() + d.GroupEntries() + d.StateEntries()
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				s.name, be, d.FlowEntries(), d.GroupEntries(), d.StateEntries(), total[i],
				tag, inband, d.Ctl.Stats.PacketIns, d.Ctl.Stats.FlowMods-modsAfterInstall)
		}
		if total[1] < total[0] {
			shrunk++
		}
	}
	w.Flush()
	if shrunk < 3 {
		log.Fatalf("backend matrix: stateful shrinks the rule space for only %d service(s), want >= 3", shrunk)
	}
	fmt.Printf("(stateful lowering strictly shrinks the rule space for %d/%d services; in-band counts are backend-invariant)\n", shrunk, len(svcs))
}

// latencyTable reports completion latency (simulated time at 1µs links)
// and mean in-band message size per service — the "size" column of
// Table 2 measured rather than asymptotic.
func latencyTable() {
	fmt.Println("\n== Completion latency and in-band message sizes (1µs links) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "service\tn\tE\tcompletion (µs)\tavg in-band bytes\tlargest report bytes")
	for _, n := range parseSizes() {
		g := graph(n)

		runOne := func(name string, install func(d *smartsouth.Deployment) (trigger func(), eth uint16)) {
			d := deploy(g)
			trigger, eth := install(d)
			trigger()
			must(d.Run())
			msgs := d.Net.InBandCount(eth)
			bytes := d.Net.InBandSize(eth)
			avg := 0
			if msgs > 0 {
				avg = bytes / msgs
			}
			report := 0
			for _, pi := range d.Ctl.Inbox() {
				if pi.Pkt.Size() > report {
					report = pi.Pkt.Size()
				}
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
				name, n, g.NumEdges(), d.Net.Sim.Now()/1000, avg, report)
		}

		runOne("snapshot", func(d *smartsouth.Deployment) (func(), uint16) {
			s, err := d.InstallSnapshot()
			must(err)
			return func() { s.Trigger(0, 0) }, core.EthSnapshot
		})
		runOne("critical", func(d *smartsouth.Deployment) (func(), uint16) {
			c, err := d.InstallCritical()
			must(err)
			return func() { c.Check(0, 0) }, core.EthCritical
		})
		runOne("anycast", func(d *smartsouth.Deployment) (func(), uint16) {
			golden := topo.GoldenDFS(g, 0, topo.Never, topo.Never)
			last := golden.FirstVisits[len(golden.FirstVisits)-1]
			a, err := d.InstallAnycast(map[uint32][]int{1: {last}})
			must(err)
			return func() { a.Send(0, 1, nil, 0) }, core.EthAnycast
		})
	}
	w.Flush()
}

// midFailureTable quantifies the paper's mid-execution-failure limitation
// and the supervisor mitigation: fail a random link at a random moment
// during the sweep; count how often the first attempt dies and how many
// attempts the retry supervisor needs.
func midFailureTable() {
	fmt.Println("\n== Limitation study: link failure DURING the traversal + retry supervisor ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trial\tfailed link\tat (µs)\tfirst attempt\tattempts to success")
	g := topo.Grid(4, 4)
	for trial := 0; trial < 6; trial++ {
		d := deploy(g)
		snap, err := d.InstallSnapshot()
		must(err)
		e := g.Edges()[(trial*5+3)%g.NumEdges()]
		at := smartsouth.Time(trial*13_000 + 4_000)
		must(d.Net.ScheduleLinkDown(e.U, e.V, true, at))
		res, attempts, err := smartsouth.Supervisor{}.SnapshotWithRetry(snap, 0)
		must(err)
		first := "survived"
		if attempts > 1 {
			first = "lost"
		}
		_ = res
		fmt.Fprintf(w, "%d\t%d-%d\t%d\t%s\t%d\n", trial, e.U, e.V, at/1000, first, attempts)
	}
	w.Flush()
	fmt.Println("(the paper assumes no failures during execution; the supervisor retries with fresh packets)")
}

func measureAll(g *topo.Graph) []row {
	n, e := g.NumNodes(), g.NumEdges()
	var rows []row

	// Snapshot.
	{
		d := deploy(g)
		s, err := d.InstallSnapshot()
		must(err)
		s.Trigger(0, 0)
		must(d.Run())
		rows = append(rows, row{"snapshot", n, e,
			"1·O(1)+1·O(E)", d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("4E-2n=%d", sweep(g)), d.Net.InBandCount(core.EthSnapshot)})
	}
	// Anycast (worst case: member is the last first-visited node).
	{
		d := deploy(g)
		golden := topo.GoldenDFS(g, 0, topo.Never, topo.Never)
		last := golden.FirstVisits[len(golden.FirstVisits)-1]
		a, err := d.InstallAnycast(map[uint32][]int{1: {last}})
		must(err)
		a.Send(0, 1, nil, 0)
		must(d.Run())
		rows = append(rows, row{"anycast", n, e,
			"0", d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("<=4E-2n=%d", sweep(g)), d.Net.InBandCount(core.EthAnycast)})
	}
	// Priocast (winner far from the root).
	{
		d := deploy(g)
		golden := topo.GoldenDFS(g, 0, topo.Never, topo.Never)
		last := golden.FirstVisits[len(golden.FirstVisits)-1]
		mid := golden.FirstVisits[len(golden.FirstVisits)/2]
		p, err := d.InstallPriocast(map[uint32][]smartsouth.PrioMember{1: {
			{Node: mid, Prio: 2}, {Node: last, Prio: 9}}})
		must(err)
		p.Send(0, 1, nil, 0)
		must(d.Run())
		rows = append(rows, row{"priocast", n, e,
			"0", d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("<=8E-4n=%d", 2*sweep(g)), d.Net.InBandCount(core.EthPriocast)})
	}
	// Blackhole 1 (TTL binary search) — only while 4E+2 fits the TTL.
	if 4*e+2 <= 255 {
		d := deploy(g)
		b, err := d.InstallBlackholeTTL()
		must(err)
		hole := g.Edges()[e/2]
		must(d.Net.SetBlackhole(hole.U, hole.V, false))
		rep, err := b.Locate(0, 0)
		must(err)
		if rep == nil {
			log.Fatal("blackhole-1 found nothing")
		}
		rows = append(rows, row{"blackhole-1", n, e,
			fmt.Sprintf("2·logE=%d", 2*log2ceil(e)), d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("~8E-4n=%d", 2*sweep(g)), d.Net.InBandCount(core.EthBlackhole)})
	}
	// Blackhole 2 (smart counters).
	{
		d := deploy(g)
		b, err := d.InstallBlackholeCounter()
		must(err)
		hole := g.Edges()[e/2]
		must(d.Net.SetBlackhole(hole.U, hole.V, false))
		b.Detect(0, 0, 0)
		must(d.Run())
		if _, found, done := b.Outcome(); !done || !found {
			log.Fatal("blackhole-2 found nothing")
		}
		rows = append(rows, row{"blackhole-2", n, e,
			"3", d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("~4E=%d", 4*e), d.Net.InBandCount(core.EthBlackhole) + d.Net.InBandCount(core.EthBlackholeChk)})
	}
	// Critical (non-critical node: full sweep).
	{
		d := deploy(g)
		cr, err := d.InstallCritical()
		must(err)
		node := 0
		cuts := topo.ArticulationPoints(g)
		for v := 0; v < n; v++ {
			if !cuts[v] {
				node = v
				break
			}
		}
		cr.Check(node, 0)
		must(d.Run())
		rows = append(rows, row{"critical", n, e,
			"2", d.Ctl.Stats.RuntimeMsgs(),
			fmt.Sprintf("4E-2n=%d", sweep(g)), d.Net.InBandCount(core.EthCritical)})
	}
	return rows
}

func tagSizeTable() {
	fmt.Println("\n== Claim: DFS tag adds O(n log Δ) bits (Table 2 footnote) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tE\ttag bytes\tbytes/node")
	for _, n := range parseSizes() {
		g := graph(n)
		l := core.NewLayout(g)
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\n", n, g.NumEdges(), l.TagBytes(), float64(l.TagBytes())/float64(n))
	}
	w.Flush()
}

func ruleSpaceTable() {
	fmt.Println("\n== Claim: 32 MB flow-table space supports a few hundred nodes ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tprograms\tflow entries/sw\tgroups/sw\tbytes/sw\tinstall msgs\tswitches per 32MB")
	for _, n := range parseSizes() {
		g := graph(n)
		d := deploy(g)
		_, err := d.InstallSnapshot()
		must(err)
		_, err = d.InstallCritical()
		must(err)
		_, err = d.InstallBlackholeCounter()
		must(err)
		perSw := float64(d.ConfigBytes()) / float64(n)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%d\t%.0f\n",
			n, len(d.Programs()), d.FlowEntries()/n, d.GroupEntries()/n, perSw,
			d.Ctl.Stats.InstallMsgs, 32*1024*1024/perSw)
	}
	w.Flush()
	fmt.Println("(three services installed simultaneously: snapshot + critical + blackhole-2;")
	fmt.Println(" sizes are summed over the retained programs, one install message per program per switch)")
}

func failoverTable() {
	fmt.Println("\n== Claim: fast-failover robustness (no controller during failures) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "failed links\tcompleted\tnodes covered\tin-band msgs")
	g := topo.Grid(6, 6)
	for _, kills := range []int{0, 2, 4, 8, 12} {
		d := deploy(g)
		snap, err := d.InstallSnapshot()
		must(err)
		dead := map[[2]int]bool{}
		for i := 0; i < kills; i++ {
			e := g.Edges()[(i*7)%g.NumEdges()]
			must(d.Net.SetLinkDown(e.U, e.V, true))
			dead[[2]int{e.U, e.V}] = true
		}
		snap.Trigger(0, 0)
		must(d.Run())
		res, err := snap.Collect()
		must(err)
		covered := 0
		if res != nil {
			covered = len(res.Nodes)
		}
		fmt.Fprintf(w, "%d\t%v\t%d/%d\t%d\n", kills, res != nil, covered, g.NumNodes(),
			d.Net.InBandCount(core.EthSnapshot))
	}
	w.Flush()
}

func pktLossTable() {
	fmt.Println("\n== Claim: prime-sized counter pairs vs packet-loss false negatives ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "packets lost\tdetected {7}\tdetected {7,11}\tdetected {7,11,13}")
	primeSets := [][]int{{7}, {7, 11}, {7, 11, 13}}
	for _, k := range []int{3, 7, 11, 14, 21, 49, 77} {
		results := make([]bool, len(primeSets))
		for pi, primes := range primeSets {
			g := topo.Line(3)
			d := deploy(g)
			pl, err := d.InstallPktLoss(primes)
			must(err)
			must(d.Net.SetBlackhole(0, 1, false))
			var at smartsouth.Time
			for i := 0; i < k; i++ {
				pl.SendData(0, 2, at)
				at += 10_000
			}
			must(d.Run())
			must(d.Net.SetLinkDown(0, 1, false))
			pl.Monitor(0, at+1_000_000)
			must(d.Run())
			losses, done := pl.Reports()
			if !done {
				log.Fatal("monitor incomplete")
			}
			results[pi] = len(losses) > 0
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\n", k, results[0], results[1], results[2])
	}
	w.Flush()
	fmt.Println("(false negatives occur exactly when the loss is divisible by every counter modulus)")
}

func baselineTable() {
	fmt.Println("\n== Claim: controller load, in-band services vs out-of-band baselines ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tE\tLLDP discovery msgs\tsnapshot msgs\treactive anycast msgs/flow\tin-band anycast msgs/flow\tprobe-blackhole msgs\tsmart-counter msgs")
	for _, n := range parseSizes() {
		g := graph(n)
		e := g.NumEdges()

		net1 := network.New(g, network.Options{})
		c1 := controller.New(net1)
		c1.InstallPuntRules(controller.EthLLDP, 100)
		c1.ResetRuntimeStats()
		c1.DiscoverTopology(0)
		must2(net1.Run())
		lldp := c1.Stats.RuntimeMsgs()

		d := deploy(g)
		snap, err := d.InstallSnapshot()
		must(err)
		snap.Trigger(0, 0)
		must(d.Run())
		snapMsgs := d.Ctl.Stats.RuntimeMsgs()

		net2 := network.New(g, network.Options{})
		c2 := controller.New(net2)
		_, _, ok := c2.ReactiveAnycast(g, 0, []int{n - 1}, 1, 0)
		if !ok {
			log.Fatal("no reactive path")
		}
		must2(net2.Run())
		reactive := c2.Stats.RuntimeMsgs() + c2.Stats.FlowMods

		net3 := network.New(g, network.Options{})
		c3 := controller.New(net3)
		c3.InstallPuntRules(controller.EthProbe, 100)
		c3.ResetRuntimeStats()
		c3.ProbeLinks(0)
		must2(net3.Run())
		probe := c3.Stats.RuntimeMsgs()

		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			n, e, lldp, snapMsgs, reactive, 0, probe, 3)
	}
	w.Flush()
}

func log2ceil(x int) int {
	n := 0
	for v := 1; v < x; v <<= 1 {
		n++
	}
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2(_ int, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
