// smartsouth runs any SmartSouth data-plane service on a generated
// topology and prints what happened, e.g.:
//
//	smartsouth -topo grid -n 16 -service snapshot
//	smartsouth -topo ring -n 10 -service critical -node 3
//	smartsouth -topo random -n 24 -service blackhole-counter -blackhole 3-5
//	smartsouth -topo fattree -n 4 -service anycast -members 12,15 -from 0
//	smartsouth -topo grid -n 16 -service priocast -members 5:2,12:9 -fail 0-1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"smartsouth"
	"smartsouth/internal/dump"
)

var (
	topoName  = flag.String("topo", "grid", "line|ring|star|tree|grid|random|fattree|ba|waxman")
	backend   = flag.String("backend", "of13", "compile backend: of13 (tag-carried state) or stateful (switch state tables)")
	n         = flag.Int("n", 16, "size parameter (nodes; rows*cols for grid; arity for fattree)")
	seed      = flag.Int64("seed", 1, "random topology seed")
	service   = flag.String("service", "snapshot", "traversal|snapshot|anycast|priocast|chaincast|critical|blackhole-ttl|blackhole-counter|pktloss|loadmap|monitor")
	coinstall = flag.String("install", "", "additional services to install (not run) alongside -service, comma-separated; exercises slot sharing for -programs/-verify")
	root      = flag.Int("root", 0, "switch the trigger is injected at")
	node      = flag.Int("node", 0, "node under test (critical)")
	members   = flag.String("members", "", "anycast: m1,m2,…  priocast: m1:prio1,m2:prio2,…")
	from      = flag.Int("from", 0, "source switch for anycast/priocast sends")
	fails     = flag.String("fail", "", "links to fail before the run, e.g. 0-1,4-5")
	blackhole = flag.String("blackhole", "", "plant a silent unidirectional failure, e.g. 3-5")
	chain     = flag.String("chain", "", "chaincast stages, e.g. 2,5/7/1,3 (stage members /-separated)")
	verbose   = flag.Bool("v", false, "print every in-band hop")
	doVerify  = flag.Bool("verify", false, "statically verify the installed configuration")
	dumpSw    = flag.Int("dump", -1, "print the full rule dump of this switch after the run")
	traceCap  = flag.Int("trace", 0, "record a hop trace of the last N pipeline executions and print it (0 = off)")
	metricsTo = flag.String("metrics", "", "write the per-service metrics snapshot as JSON to this file ('-' = stdout)")
	progsTo   = flag.String("programs", "", "write the compiled programs as JSON to this file ('-' = stdout); feed to oflint")
	topoTo    = flag.String("topo-json", "", "write the topology as JSON to this file ('-' = stdout); feed to oflint")
	serveAddr = flag.String("serve", "", "serve /metrics, /telemetry, /debug/vars and /debug/pprof on this address (e.g. :9090) and block after the run")
	telemTo   = flag.String("telemetry", "", "write the process telemetry snapshot as JSON to this file ('-' = stdout)")
	flightTo  = flag.String("flight", "", "write the flight-recorder JSONL to this file ('-' = stdout) after the run; also the dump path on failure")
	timeTo    = flag.String("timeline", "", "enable causal tracing and write the span timeline as Chrome trace-event JSON to this file ('-' = stdout); with -serve it is also live on /traces")
)

func buildTopo() *smartsouth.Graph {
	switch *topoName {
	case "line":
		return smartsouth.Line(*n)
	case "ring":
		return smartsouth.Ring(*n)
	case "star":
		return smartsouth.Star(*n)
	case "tree":
		return smartsouth.Tree(*n, 2)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		return smartsouth.Grid(side, (*n+side-1)/side)
	case "random":
		return smartsouth.RandomConnected(*n, *n/2, *seed)
	case "fattree":
		g, err := smartsouth.FatTree(*n)
		if err != nil {
			log.Fatal(err)
		}
		return g
	case "ba":
		return smartsouth.BarabasiAlbert(*n, 2, *seed)
	case "waxman":
		return smartsouth.Waxman(*n, 0.4, 0.2, *seed)
	}
	log.Fatalf("unknown topology %q", *topoName)
	return nil
}

func parsePair(s string) (int, int) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		log.Fatalf("bad link spec %q (want u-v)", s)
	}
	u, err1 := strconv.Atoi(parts[0])
	v, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		log.Fatalf("bad link spec %q", s)
	}
	return u, v
}

func main() {
	flag.Parse()
	g := buildTopo()
	opts := []smartsouth.Option{smartsouth.WithSeed(*seed), smartsouth.WithBackend(*backend)}
	if *traceCap > 0 {
		opts = append(opts, smartsouth.WithTrace(*traceCap))
	}
	if *timeTo != "" {
		opts = append(opts, smartsouth.WithTimeline(0))
	}
	d := smartsouth.Deploy(g, opts...)
	if *flightTo != "" && *flightTo != "-" {
		d.FlightDumpPath = *flightTo
	}
	if *serveAddr != "" {
		addr, err := smartsouth.ServeTelemetry(*serveAddr)
		fatal(err)
		fmt.Printf("telemetry: serving http://%s/metrics (and /telemetry, /debug/vars, /debug/pprof)\n", addr)
	}
	fmt.Printf("topology: %s, %d switches, %d links\n", *topoName, g.NumNodes(), g.NumEdges())
	if *backend != "of13" {
		fmt.Printf("backend: %s\n", d.BackendName())
	}

	if *verbose {
		d.Net.OnHop = func(h smartsouth.Hop, pkt *smartsouth.Packet, delivered bool) {
			status := ""
			if !delivered {
				status = "  [LOST]"
			}
			fmt.Printf("  hop %d(p%d) -> %d(p%d)%s\n", h.From, h.FromPort, h.To, h.ToPort, status)
		}
	}

	d.OnDeliver(func(sw int, pkt *smartsouth.Packet) {
		fmt.Printf("delivered at switch %d (payload %q)\n", sw, pkt.Payload)
	})

	run := func() {
		if err := d.Run(); err != nil {
			log.Fatal(err)
		}
	}

	apply := func(spec string, f func(u, v int)) {
		if spec == "" {
			return
		}
		for _, s := range strings.Split(spec, ",") {
			u, v := parsePair(s)
			f(u, v)
		}
	}

	// Co-installed services take the low slots; the -service under test
	// gets the next free one. They are never triggered — they only share
	// the rule space, which is exactly what -programs dumps and the
	// static analysis want to see.
	if *coinstall != "" {
		for _, name := range strings.Split(*coinstall, ",") {
			var err error
			switch name {
			case "traversal":
				_, err = d.InstallTraversal()
			case "snapshot":
				_, err = d.InstallSnapshot()
			case "anycast":
				_, err = d.InstallAnycast(map[uint32][]int{1: {0, g.NumNodes() - 1}})
			case "critical":
				_, err = d.InstallCritical()
			case "blackhole-ttl":
				_, err = d.InstallBlackholeTTL()
			case "blackhole-counter":
				_, err = d.InstallBlackholeCounter()
			default:
				log.Fatalf("unknown -install service %q", name)
			}
			fatal(err)
		}
	}

	switch *service {
	case "traversal":
		tr, err := d.InstallTraversal()
		fatal(err)
		applyFailures(d, apply)
		tr.Trigger(*root, 0)
		run()
		fmt.Printf("traversal completed: %v\n", tr.Completed())

	case "snapshot":
		s, err := d.InstallSnapshot()
		fatal(err)
		applyFailures(d, apply)
		s.Trigger(*root, 0)
		run()
		res, err := s.Collect()
		fatal(err)
		if res == nil {
			fmt.Println("no snapshot returned (trigger lost?)")
			os.Exit(1)
		}
		fmt.Printf("snapshot: %d nodes, %d links\n", len(res.Nodes), len(res.Edges))
		for _, e := range res.Edges {
			fmt.Printf("  %d(p%d) -- %d(p%d)\n", e.U, e.PU, e.V, e.PV)
		}

	case "anycast":
		ms := parseMembers(*members)
		if len(ms) == 0 {
			log.Fatal("anycast needs -members m1,m2,…")
		}
		var plain []int
		for _, m := range ms {
			plain = append(plain, m.Node)
		}
		a, err := d.InstallAnycast(map[uint32][]int{1: plain})
		fatal(err)
		applyFailures(d, apply)
		a.Send(*from, 1, []byte("anycast-payload"), 0)
		run()

	case "priocast":
		ms := parseMembers(*members)
		if len(ms) == 0 {
			log.Fatal("priocast needs -members m1:p1,m2:p2,…")
		}
		p, err := d.InstallPriocast(map[uint32][]smartsouth.PrioMember{1: ms})
		fatal(err)
		applyFailures(d, apply)
		p.Send(*from, 1, []byte("priocast-payload"), 0)
		run()
		if p.FailureReported() {
			fmt.Println("no receiver reachable (failure reported to controller)")
		}

	case "critical":
		cr, err := d.InstallCritical()
		fatal(err)
		applyFailures(d, apply)
		cr.Check(*node, 0)
		run()
		crit, ok := cr.Verdict()
		if !ok {
			log.Fatal("no verdict (trigger lost?)")
		}
		fmt.Printf("switch %d critical: %v\n", *node, crit)

	case "blackhole-ttl":
		b, err := d.InstallBlackholeTTL()
		fatal(err)
		applyFailures(d, apply)
		rep, err := b.Locate(*root, 0)
		fatal(err)
		if rep == nil {
			fmt.Println("no blackhole found")
		} else {
			fmt.Printf("located: %v\n", rep)
		}

	case "blackhole-counter":
		b, err := d.InstallBlackholeCounter()
		fatal(err)
		applyFailures(d, apply)
		b.Detect(*root, 0, 0)
		run()
		rep, found, done := b.Outcome()
		switch {
		case !done:
			fmt.Println("inconclusive (checker swallowed) — rerun after reset")
		case found:
			fmt.Printf("located: %v\n", rep)
		default:
			fmt.Println("no blackhole found")
		}

	case "pktloss":
		pl, err := d.InstallPktLoss(nil)
		fatal(err)
		// Demo workload: traffic between opposite corners, with losses on
		// the planted blackhole (if any).
		applyFailures(d, apply)
		var at smartsouth.Time
		for i := 0; i < 10; i++ {
			pl.SendData(0, g.NumNodes()-1, at)
			at += 100_000
		}
		run()
		// Heal any blackhole so the monitor itself survives.
		if *blackhole != "" {
			u, v := parsePair(*blackhole)
			fatal(d.Net.SetLinkDown(u, v, false))
		}
		pl.Monitor(*root, at+1_000_000)
		run()
		losses, done := pl.Reports()
		fmt.Printf("monitor completed: %v\n", done)
		for _, r := range losses {
			fmt.Printf("loss: packets from %d vanish entering %d (port %d)\n", r.Peer, r.Switch, r.Port)
		}
		if len(losses) == 0 {
			fmt.Println("no loss detected")
		}

	case "chaincast":
		if *chain == "" {
			log.Fatal("chaincast needs -chain s0m1,s0m2/s1m1/…")
		}
		var stages [][]int
		for _, stage := range strings.Split(*chain, "/") {
			var ms []int
			for _, m := range strings.Split(stage, ",") {
				v, err := strconv.Atoi(m)
				if err != nil {
					log.Fatalf("bad chain member %q", m)
				}
				ms = append(ms, v)
			}
			stages = append(stages, ms)
		}
		cc, err := d.InstallChaincast(stages)
		fatal(err)
		applyFailures(d, apply)
		cc.Send(*from, []byte("chain-payload"), 0)
		run()

	case "monitor":
		mon, err := d.InstallMonitor(*root, true)
		fatal(err)
		if _, err := mon.Round(); err != nil {
			log.Fatal(err)
		}
		applyFailures(d, apply)
		events, err := mon.Round()
		fatal(err)
		if len(events) == 0 {
			fmt.Println("monitor: no changes detected")
		}
		for _, e := range events {
			fmt.Println("monitor:", e)
		}

	case "loadmap":
		lm, err := d.InstallLoadMap()
		fatal(err)
		applyFailures(d, apply)
		var at smartsouth.Time
		for i := 0; i < 12; i++ {
			lm.SendData(i%g.NumNodes(), (i*3+1)%g.NumNodes(), at)
			at += 100_000
		}
		run()
		lm.Monitor(*root, at+1_000_000)
		run()
		loads, done := lm.Loads()
		fmt.Printf("load map complete: %v\n", done)
		for pl, v := range loads {
			if v > 0 {
				fmt.Printf("  switch %d port %d received %d data packets\n", pl.Node, pl.Port, v)
			}
		}

	default:
		log.Fatalf("unknown service %q", *service)
	}

	if *dumpSw >= 0 && *dumpSw < g.NumNodes() {
		fmt.Print(dump.Switch(d.Net.Switch(*dumpSw)))
	}

	if *doVerify {
		issues := d.Verify()
		errs := 0
		for _, i := range issues {
			fmt.Println(i)
			if i.Severity.String() == "error" {
				errs++
			}
		}
		fmt.Printf("verification: %d findings, %d errors\n", len(issues), errs)
	}

	if *traceCap > 0 {
		events := d.TraceEvents()
		fmt.Printf("\nhop trace (%d executions retained, %d dropped):\n", len(events), d.Trace.Dropped())
		fmt.Print(dump.Trace(events))
	}

	fmt.Printf("\ncontrol plane: %d flow-mods, %d group-mods in %d install messages (offline); %d packet-outs, %d packet-ins (runtime)\n",
		d.Ctl.Stats.FlowMods, d.Ctl.Stats.GroupMods, d.Ctl.Stats.InstallMsgs,
		d.Ctl.Stats.PacketOuts, d.Ctl.Stats.PacketIns)
	fmt.Printf("in-band messages: %d\n", d.Net.TotalInBand())
	fmt.Print("installed programs:\n", dump.ProgramSummary(d.Programs()))
	if n := d.StateEntries(); n > 0 {
		fmt.Printf("installed state: %d flow entries, %d groups, %d state entries, %d bytes total\n",
			d.FlowEntries(), d.GroupEntries(), n, d.ConfigBytes())
	} else {
		fmt.Printf("installed state: %d flow entries, %d groups, %d bytes total\n",
			d.FlowEntries(), d.GroupEntries(), d.ConfigBytes())
	}

	writeOut := func(name, what string, data []byte) {
		if name == "-" {
			fmt.Printf("%s JSON:\n%s\n", what, data)
		} else {
			fatal(os.WriteFile(name, append(data, '\n'), 0o644))
			fmt.Printf("%s JSON written to %s\n", what, name)
		}
	}
	if *progsTo != "" {
		js, err := dump.MarshalPrograms(d.Programs())
		fatal(err)
		writeOut(*progsTo, "programs", js)
	}
	if *topoTo != "" {
		js, err := json.Marshal(g)
		fatal(err)
		writeOut(*topoTo, "topology", js)
	}

	if *metricsTo != "" {
		fmt.Print("\nper-service metrics:\n", dump.Metrics(d.MetricsSnapshot()))
		js, err := d.MetricsJSON()
		fatal(err)
		if *metricsTo == "-" {
			fmt.Printf("metrics JSON:\n%s\n", js)
		} else {
			fatal(os.WriteFile(*metricsTo, append(js, '\n'), 0o644))
			fmt.Printf("metrics JSON written to %s\n", *metricsTo)
		}
	}

	if *telemTo != "" {
		js, err := json.MarshalIndent(smartsouth.TelemetrySnapshot(), "", "  ")
		fatal(err)
		writeOut(*telemTo, "telemetry", js)
	}
	if *flightTo != "" {
		if *flightTo == "-" {
			fmt.Println("flight recorder JSONL:")
			fatal(d.DumpFlight(os.Stdout))
		} else {
			fatal(d.WriteFlightDump(*flightTo))
			fmt.Printf("flight recorder JSONL written to %s\n", *flightTo)
		}
	}
	if *timeTo != "" {
		if *timeTo == "-" {
			fmt.Println("causal timeline (Chrome trace-event JSON):")
			fatal(d.WriteTimeline(os.Stdout))
		} else {
			f, err := os.Create(*timeTo)
			fatal(err)
			fatal(d.WriteTimeline(f))
			fatal(f.Close())
			fmt.Printf("causal timeline written to %s\n", *timeTo)
		}
	}

	if *serveAddr != "" {
		fmt.Println("telemetry: run finished, serving until interrupted")
		select {}
	}
}

// applyFailures applies -fail and -blackhole.
func applyFailures(d *smartsouth.Deployment, apply func(string, func(u, v int))) {
	apply(*fails, func(u, v int) {
		if err := d.Net.SetLinkDown(u, v, true); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failed link %d-%d\n", u, v)
	})
	apply(*blackhole, func(u, v int) {
		if err := d.Net.SetBlackhole(u, v, false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("planted silent blackhole %d -> %d\n", u, v)
	})
}

func parseMembers(s string) []smartsouth.PrioMember {
	if s == "" {
		return nil
	}
	var out []smartsouth.PrioMember
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, ":", 2)
		node, err := strconv.Atoi(kv[0])
		if err != nil {
			log.Fatalf("bad member %q", part)
		}
		prio := 1
		if len(kv) == 2 {
			prio, err = strconv.Atoi(kv[1])
			if err != nil {
				log.Fatalf("bad priority in %q", part)
			}
		}
		out = append(out, smartsouth.PrioMember{Node: node, Prio: prio})
	}
	return out
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
