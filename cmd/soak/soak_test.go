package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestIterationPasses: a normal iteration converges against its oracles
// and leaves no dump behind.
func TestIterationPasses(t *testing.T) {
	for s := int64(1); s <= 5; s++ {
		family, dumpPath, err := runIteration(s, false, t.TempDir())
		if err != nil {
			t.Fatalf("seed %d (%s): %v", s, family, err)
		}
		if dumpPath != "" {
			t.Fatalf("seed %d: dump %s written for a passing iteration", s, dumpPath)
		}
	}
}

// TestForcedFailureDumpsFlight is the post-mortem acceptance test: a
// forced oracle divergence must produce a flight-recorder JSONL whose
// final records replay the failing traversal — pipeline executions with
// the decoded DFS tag state (start, par, cur) at every hop — and whose
// last line is the divergence note.
func TestForcedFailureDumpsFlight(t *testing.T) {
	dir := t.TempDir()
	family, dumpPath, err := runIteration(7, true, dir)
	if err == nil {
		t.Fatal("-force-fail must report a divergence")
	}
	if !strings.Contains(err.Error(), "forced oracle divergence") {
		t.Fatalf("unexpected error: %v", err)
	}
	if family == "" {
		t.Fatal("family missing")
	}
	if dumpPath == "" {
		t.Fatal("failure produced no flight dump")
	}

	f, err := os.Open(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type tag struct {
		Name string `json:"name"`
		Val  uint64 `json:"val"`
	}
	type rec struct {
		Seq    uint64 `json:"seq"`
		Kind   string `json:"kind"`
		Sw     int32  `json:"sw"`
		Cookie string `json:"cookie"`
		Tags   []tag  `json:"tags"`
	}
	var recs []rec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("dump too short: %d records", len(recs))
	}

	last := recs[len(recs)-1]
	if last.Kind != "note" || !strings.Contains(last.Cookie, "soak oracle divergence") {
		t.Fatalf("last record must be the divergence note, got %+v", last)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("records out of order at %d: seq %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}

	// The records before the note are the failing traversal: executions
	// carrying the decoded DFS state.
	decoded := 0
	for _, r := range recs {
		if r.Kind != "exec" || len(r.Tags) == 0 {
			continue
		}
		names := map[string]bool{}
		for _, tg := range r.Tags {
			names[tg.Name] = true
		}
		if !names["start"] || !names["par"] || !names["cur"] {
			t.Fatalf("exec record missing decoded DFS state: %+v", r)
		}
		decoded++
	}
	if decoded == 0 {
		t.Fatal("no exec record carries decoded tag state; the dump cannot replay the traversal")
	}
}
