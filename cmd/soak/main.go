// soak is the randomized chaos harness: every iteration builds a random
// topology from a random family, installs a random mix of SmartSouth
// services, injects random failures (link-down before the run, silent
// blackholes, mid-flight failures), runs the services and cross-checks
// every result against its graph-theoretic oracle. Any divergence aborts
// with a reproducible seed.
//
//	go run ./cmd/soak -iters 200
//	go run ./cmd/soak -seed 12345 -iters 1    # replay one iteration
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"smartsouth"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

var (
	iters   = flag.Int("iters", 100, "iterations")
	seed    = flag.Int64("seed", 1, "base seed (iteration i uses seed+i)")
	verbose = flag.Bool("v", false, "log every iteration")
)

func main() {
	flag.Parse()
	pass := 0
	for i := 0; i < *iters; i++ {
		s := *seed + int64(i)
		if err := iteration(s); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL seed=%d: %v\n", s, err)
			os.Exit(1)
		}
		pass++
		if *verbose {
			log.Printf("seed=%d ok", s)
		}
	}
	fmt.Printf("soak: %d/%d iterations passed\n", pass, *iters)
}

func buildTopo(rng *rand.Rand) *smartsouth.Graph {
	n := 5 + rng.Intn(26)
	switch rng.Intn(5) {
	case 0:
		return topo.RandomConnected(n, rng.Intn(n), rng.Int63())
	case 1:
		side := 2 + rng.Intn(4)
		return topo.Grid(side, 2+rng.Intn(4))
	case 2:
		return topo.BarabasiAlbert(n, 1+rng.Intn(3), rng.Int63())
	case 3:
		return topo.Waxman(n, 0.3+rng.Float64()*0.4, 0.1+rng.Float64()*0.3, rng.Int63())
	default:
		return topo.Ring(3 + rng.Intn(20))
	}
}

func iteration(s int64) error {
	rng := rand.New(rand.NewSource(s))
	g := buildTopo(rng)
	d := smartsouth.Deploy(g, smartsouth.Options{Seed: s})
	n := g.NumNodes()

	snap, err := d.InstallSnapshot()
	if err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	member := rng.Intn(n)
	any, err := d.InstallAnycast(map[uint32][]int{1: {member}})
	if err != nil {
		return fmt.Errorf("install anycast: %w", err)
	}
	crit, err := d.InstallCritical()
	if err != nil {
		return fmt.Errorf("install critical: %w", err)
	}

	// Fail up to 2 random links before anything runs (keep the graph
	// connected or not — both are legal; oracles use the live view).
	dead := map[[2]int]bool{}
	for k := rng.Intn(3); k > 0 && g.NumEdges() > 0; k-- {
		e := g.Edges()[rng.Intn(g.NumEdges())]
		if err := d.Net.SetLinkDown(e.U, e.V, true); err != nil {
			return err
		}
		dead[[2]int{e.U, e.V}] = true
	}
	isDead := func(u, p int) bool {
		v, _, _ := g.Neighbor(u, p)
		return dead[[2]int{u, v}] || dead[[2]int{v, u}]
	}

	// Static verification of the full install.
	if errs := d.VerifyErrors(); len(errs) > 0 {
		return fmt.Errorf("verify: %v", errs[0])
	}
	// And of the retained programs: the pre-install check every install
	// already passed must also hold for the recorded intent.
	if errs := verify.Errors(d.VerifyPrograms()); len(errs) > 0 {
		return fmt.Errorf("verify programs: %v", errs[0])
	}
	if len(d.Programs()) != 3 {
		return fmt.Errorf("retained %d programs, want 3", len(d.Programs()))
	}

	// --- Snapshot from a random root, checked against reachability ----
	root := rng.Intn(n)
	res, _, err := smartsouth.Supervisor{}.SnapshotWithRetry(snap, root)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	reach := topo.Reachable(g, root, isDead)
	if len(res.Nodes) != len(reach) {
		return fmt.Errorf("snapshot nodes %d, reachable %d", len(res.Nodes), len(reach))
	}
	for _, e := range g.Edges() {
		want := reach[e.U] && reach[e.V] && !dead[[2]int{e.U, e.V}] && !dead[[2]int{e.V, e.U}]
		if res.HasEdge(e.U, e.V) != want {
			return fmt.Errorf("snapshot edge %d-%d presence=%v want %v", e.U, e.V, res.HasEdge(e.U, e.V), want)
		}
	}

	// --- Anycast delivered iff reachable -------------------------------
	src := rng.Intn(n)
	delivered := -1
	d.OnDeliver(func(sw int, _ *smartsouth.Packet) { delivered = sw })
	any.Send(src, 1, nil, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		return fmt.Errorf("anycast run: %w", err)
	}
	if topo.Reachable(g, src, isDead)[member] {
		if delivered != member {
			return fmt.Errorf("anycast delivered at %d, want %d", delivered, member)
		}
	} else if delivered != -1 {
		return fmt.Errorf("anycast delivered at %d although unreachable", delivered)
	}

	// --- Criticality vs articulation-point oracle on the live graph ---
	node := rng.Intn(n)
	if reach[node] && node != root {
		// Only nodes in the root's component matter; build the live
		// subgraph oracle via brute force.
		liveCut := func(v int) bool {
			deadOrV := func(u, p int) bool {
				if isDead(u, p) || u == v {
					return true
				}
				w, _, _ := g.Neighbor(u, p)
				return w == v
			}
			start := root
			if start == v {
				return false
			}
			return len(topo.Reachable(g, start, deadOrV)) != len(reach)-1
		}
		d.Ctl.ClearInbox()
		got, _, err := smartsouth.Supervisor{}.CriticalWithRetry(crit, node)
		if err != nil {
			return fmt.Errorf("critical: %w", err)
		}
		// The service evaluates criticality from the node's own component;
		// compare within the root's component only when they share it.
		if topo.Reachable(g, node, isDead)[root] && got != liveCut(node) {
			return fmt.Errorf("critical(%d)=%v oracle=%v", node, got, liveCut(node))
		}
	}
	return nil
}
