// soak is the randomized chaos harness: every iteration builds a random
// topology from a random family, installs a random mix of SmartSouth
// services, injects random failures (link-down before the run, silent
// blackholes, mid-flight failures), runs the services and cross-checks
// every result against its graph-theoretic oracle. Any divergence aborts
// with a reproducible seed and a flight-recorder post-mortem: the JSONL
// dump's final records replay the failing traversal hop by hop with the
// decoded DFS tag state.
//
//	go run ./cmd/soak -iters 200
//	go run ./cmd/soak -seed 12345 -iters 1    # replay one iteration
//	go run ./cmd/soak -iters 50 -json         # machine-readable summary
//	go run ./cmd/soak -force-fail -iters 1    # exercise the failure path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"smartsouth"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

var (
	iters     = flag.Int("iters", 100, "iterations")
	backend   = flag.String("backend", "of13", "compile backend: of13 (tag-carried state) or stateful (switch state tables)")
	shards    = flag.Int("shards", 1, "event-loop shard count for every iteration's network (oracle checks are shard-invariant)")
	seed      = flag.Int64("seed", 1, "base seed (iteration i uses seed+i)")
	verbose   = flag.Bool("v", false, "log every iteration")
	jsonOut   = flag.Bool("json", false, "print a JSON summary instead of the one-line tally")
	serveAddr = flag.String("serve", "", "serve /metrics, /telemetry and /debug/pprof on this address while soaking")
	forceFail = flag.Bool("force-fail", false, "report a synthetic oracle divergence on every iteration (tests the failure path)")
	dumpDir   = flag.String("dump-dir", os.TempDir(), "directory for flight-recorder dumps of failed iterations ('' = no dumps)")
	timeline  = flag.String("timeline", "", "enable causal tracing and write each iteration's span timeline (Chrome trace-event JSON) to this path — overwritten per iteration, so after a failure it holds the failing traversal")
)

// iterFailure describes one failed iteration in the JSON summary.
type iterFailure struct {
	Seed       int64  `json:"seed"`
	Family     string `json:"family"`
	Error      string `json:"error"`
	FlightDump string `json:"flightDump,omitempty"`
}

// summary is the -json output: the tally plus everything needed to
// reproduce a failure (seed, family, dump path).
type summary struct {
	Iterations int            `json:"iterations"`
	Passed     int            `json:"passed"`
	Failed     int            `json:"failed"`
	Families   map[string]int `json:"families"`
	Failures   []iterFailure  `json:"failures,omitempty"`
}

func main() {
	flag.Parse()
	if *serveAddr != "" {
		addr, err := smartsouth.ServeTelemetry(*serveAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: serving http://%s/metrics\n", addr)
	}

	sum := summary{Families: map[string]int{}}
	exitCode := 0
	for i := 0; i < *iters; i++ {
		s := *seed + int64(i)
		family, dumpPath, err := runIteration(s, *forceFail, *dumpDir)
		sum.Iterations++
		sum.Families[family]++
		if err != nil {
			sum.Failed++
			sum.Failures = append(sum.Failures, iterFailure{
				Seed: s, Family: family, Error: err.Error(), FlightDump: dumpPath,
			})
			msg := fmt.Sprintf("FAIL seed=%d family=%s: %v", s, family, err)
			if dumpPath != "" {
				msg += fmt.Sprintf(" (flight dump: %s)", dumpPath)
			}
			fmt.Fprintln(os.Stderr, msg)
			exitCode = 1
			break
		}
		sum.Passed++
		if *verbose {
			log.Printf("seed=%d ok (%s)", s, family)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("soak: %d/%d iterations passed\n", sum.Passed, sum.Iterations)
	}
	os.Exit(exitCode)
}

// writeTimeline writes the deployment's retained causal spans to path as
// Chrome trace-event JSON.
func writeTimeline(d *smartsouth.Deployment, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildTopo(rng *rand.Rand) (*smartsouth.Graph, string) {
	n := 5 + rng.Intn(26)
	switch rng.Intn(5) {
	case 0:
		return topo.RandomConnected(n, rng.Intn(n), rng.Int63()), "random"
	case 1:
		side := 2 + rng.Intn(4)
		return topo.Grid(side, 2+rng.Intn(4)), "grid"
	case 2:
		return topo.BarabasiAlbert(n, 1+rng.Intn(3), rng.Int63()), "ba"
	case 3:
		return topo.Waxman(n, 0.3+rng.Float64()*0.4, 0.1+rng.Float64()*0.3, rng.Int63()), "waxman"
	default:
		return topo.Ring(3 + rng.Intn(20)), "ring"
	}
}

// runIteration executes one soak iteration. On divergence it marks the
// flight ring with a note and writes the post-mortem JSONL to dumpDir, so
// the FAIL line always points at a replayable trace.
func runIteration(s int64, forceFail bool, dumpDir string) (family, dumpPath string, err error) {
	rng := rand.New(rand.NewSource(s))
	g, family := buildTopo(rng)
	opts := []smartsouth.Option{smartsouth.Options{Seed: s}, smartsouth.WithBackend(*backend), smartsouth.WithShards(*shards)}
	if *timeline != "" {
		opts = append(opts, smartsouth.WithTimeline(0))
	}
	d := smartsouth.Deploy(g, opts...)
	err = oracles(d, g, rng, forceFail)
	if *timeline != "" {
		if werr := writeTimeline(d, *timeline); werr != nil {
			fmt.Fprintf(os.Stderr, "soak: timeline write failed: %v\n", werr)
		}
	}
	if err != nil && dumpDir != "" && d.Flight() != nil {
		d.Net.FlightNote("soak oracle divergence: " + err.Error())
		p := filepath.Join(dumpDir, fmt.Sprintf("soak-flight-seed%d.jsonl", s))
		if werr := d.WriteFlightDump(p); werr != nil {
			fmt.Fprintf(os.Stderr, "soak: flight dump failed: %v\n", werr)
		} else {
			dumpPath = p
		}
	}
	return family, dumpPath, err
}

// oracles installs the service mix, injects failures and cross-checks
// every result against its graph-theoretic oracle.
func oracles(d *smartsouth.Deployment, g *smartsouth.Graph, rng *rand.Rand, forceFail bool) error {
	n := g.NumNodes()

	snap, err := d.InstallSnapshot()
	if err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	member := rng.Intn(n)
	any, err := d.InstallAnycast(map[uint32][]int{1: {member}})
	if err != nil {
		return fmt.Errorf("install anycast: %w", err)
	}
	crit, err := d.InstallCritical()
	if err != nil {
		return fmt.Errorf("install critical: %w", err)
	}

	// Fail up to 2 random links before anything runs (keep the graph
	// connected or not — both are legal; oracles use the live view).
	// Surviving failures is an of13 property: its fast-failover groups
	// re-route at packet time, while the stateful lowering resolves the
	// port scan at compile time and has nothing to fail over to.
	dead := map[[2]int]bool{}
	failures := rng.Intn(3)
	if d.BackendName() == "stateful" {
		failures = 0
	}
	for k := failures; k > 0 && g.NumEdges() > 0; k-- {
		e := g.Edges()[rng.Intn(g.NumEdges())]
		if err := d.Net.SetLinkDown(e.U, e.V, true); err != nil {
			return err
		}
		dead[[2]int{e.U, e.V}] = true
	}
	isDead := func(u, p int) bool {
		v, _, _ := g.Neighbor(u, p)
		return dead[[2]int{u, v}] || dead[[2]int{v, u}]
	}

	// Static verification of the full install.
	if errs := d.VerifyErrors(); len(errs) > 0 {
		return fmt.Errorf("verify: %v", errs[0])
	}
	// And of the retained programs: the pre-install check every install
	// already passed must also hold for the recorded intent.
	if errs := verify.Errors(d.VerifyPrograms()); len(errs) > 0 {
		return fmt.Errorf("verify programs: %v", errs[0])
	}
	if len(d.Programs()) != 3 {
		return fmt.Errorf("retained %d programs, want 3", len(d.Programs()))
	}

	// --- Snapshot from a random root, checked against reachability ----
	root := rng.Intn(n)
	res, _, err := smartsouth.Supervisor{}.SnapshotWithRetry(snap, root)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	reach := topo.Reachable(g, root, isDead)
	if len(res.Nodes) != len(reach) {
		return fmt.Errorf("snapshot nodes %d, reachable %d", len(res.Nodes), len(reach))
	}
	for _, e := range g.Edges() {
		want := reach[e.U] && reach[e.V] && !dead[[2]int{e.U, e.V}] && !dead[[2]int{e.V, e.U}]
		if res.HasEdge(e.U, e.V) != want {
			return fmt.Errorf("snapshot edge %d-%d presence=%v want %v", e.U, e.V, res.HasEdge(e.U, e.V), want)
		}
	}

	// The sweep just completed, so the flight ring now holds its final
	// hops — exactly what the forced divergence must leave behind.
	if forceFail {
		return fmt.Errorf("forced oracle divergence (-force-fail): snapshot root %d saw %d nodes", root, len(res.Nodes))
	}

	// --- Anycast delivered iff reachable -------------------------------
	src := rng.Intn(n)
	delivered := -1
	d.OnDeliver(func(sw int, _ *smartsouth.Packet) { delivered = sw })
	any.Send(src, 1, nil, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		return fmt.Errorf("anycast run: %w", err)
	}
	if topo.Reachable(g, src, isDead)[member] {
		if delivered != member {
			return fmt.Errorf("anycast delivered at %d, want %d", delivered, member)
		}
	} else if delivered != -1 {
		return fmt.Errorf("anycast delivered at %d although unreachable", delivered)
	}

	// --- Criticality vs articulation-point oracle on the live graph ---
	node := rng.Intn(n)
	if reach[node] && node != root {
		// Only nodes in the root's component matter; build the live
		// subgraph oracle via brute force.
		liveCut := func(v int) bool {
			deadOrV := func(u, p int) bool {
				if isDead(u, p) || u == v {
					return true
				}
				w, _, _ := g.Neighbor(u, p)
				return w == v
			}
			start := root
			if start == v {
				return false
			}
			return len(topo.Reachable(g, start, deadOrV)) != len(reach)-1
		}
		d.Ctl.ClearInbox()
		got, _, err := smartsouth.Supervisor{}.CriticalWithRetry(crit, node)
		if err != nil {
			return fmt.Errorf("critical: %w", err)
		}
		// The service evaluates criticality from the node's own component;
		// compare within the root's component only when they share it.
		if topo.Reachable(g, node, isDead)[root] && got != liveCut(node) {
			return fmt.Errorf("critical(%d)=%v oracle=%v", node, got, liveCut(node))
		}
	}
	return nil
}
